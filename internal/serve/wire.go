package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/graph"
	"hetopt/internal/offload"
	"hetopt/internal/scenario"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// TuneRequest is the wire form of one tuning query: which workload to
// tune, with which method/strategy, under which objective, and with how
// much search budget. Absent fields select the documented defaults, and
// Normalize folds every request into a canonical form, so two requests
// that mean the same run — whatever their JSON field order or explicit
// defaults — share one warm-start store entry.
type TuneRequest struct {
	// Workload names a registered scenario workload: a family ("spmv"),
	// a qualified preset ("spmv:large", "dna:human"), or a bare preset
	// alias such as a genome name ("human"). Normalize canonicalizes it
	// to the "family:preset" form; empty defers to Genome, then to the
	// default "dna:human".
	Workload string `json:"workload,omitempty"`
	// Platform names a registered platform spec ("paper", "gpu-like",
	// "edge"); empty selects "paper".
	Platform string `json:"platform,omitempty"`
	// Genome names an evaluation genome ("human", "mouse", "cat",
	// "dog"). It predates the scenario catalog and remains accepted as a
	// workload alias; Normalize folds it into Workload.
	Genome string `json:"genome,omitempty"`
	// SizeMB overrides the workload size; zero selects the resolved
	// preset's size.
	SizeMB float64 `json:"size_mb,omitempty"`
	// Method is one of the paper's four methods (em, eml, sam, saml);
	// empty selects "saml".
	Method string `json:"method,omitempty"`
	// Strategy selects the search strategy (auto, anneal, exhaustive,
	// exact, genetic, tabu, local, random, portfolio); empty selects
	// "auto", the method's preset explorer.
	Strategy string `json:"strategy,omitempty"`
	// Objective is time, energy, weighted or bounded; empty selects
	// "time". "bounded" runs the two-phase constrained pipeline and the
	// result carries the time-optimal reference alongside.
	Objective string `json:"objective,omitempty"`
	// Alpha is the time weight in [0,1] for the weighted objective; it
	// is ignored (and canonicalized to zero) for every other objective.
	Alpha float64 `json:"alpha,omitempty"`
	// Slack is the non-negative makespan slack over the time optimum for
	// the bounded objective; ignored (canonicalized to zero) otherwise.
	Slack float64 `json:"slack,omitempty"`
	// Iterations is the search evaluation budget per worker; zero
	// selects 1000 (exhaustive enumeration ignores it).
	Iterations int `json:"iterations,omitempty"`
	// Restarts is the independent worker count (annealing chains,
	// heuristic restarts); zero or one runs a single worker.
	Restarts int `json:"restarts,omitempty"`
	// Seed drives the strategy's stochastic choices. Identical requests
	// (same seed included) return bit-identical results.
	Seed int64 `json:"seed,omitempty"`
	// PoolSize requests a diverse near-optimal solution pool of up to
	// this many entries from the exact strategy; PoolGap is the relative
	// objective window pool members may occupy above the optimum (zero
	// selects the default when a pool is requested). Both are exact-only
	// knobs: Normalize zeroes them (like Alpha outside "weighted") for
	// every other strategy.
	PoolSize int     `json:"pool_size,omitempty"`
	PoolGap  float64 `json:"pool_gap,omitempty"`
	// Prove lifts the exact strategy's per-subtree evaluation budget so
	// the run exhausts the tree and the certificate is a proof; zeroed
	// for every other strategy.
	Prove bool `json:"prove,omitempty"`
}

// Normalize validates the request and returns its canonical form:
// names lower/upper-cased to their parseable spellings, defaults made
// explicit, and fields that the selected objective ignores zeroed. Two
// requests describing the same run normalize to equal values (and hence
// equal Key strings), which is what makes the warm-start store
// deterministic.
func (r TuneRequest) Normalize() (TuneRequest, error) {
	n := r

	n.Workload = strings.ToLower(strings.TrimSpace(r.Workload))
	n.Genome = strings.ToLower(strings.TrimSpace(r.Genome))
	if n.Workload != "" && n.Genome != "" {
		return TuneRequest{}, fmt.Errorf("serve: set workload %q or genome %q, not both (genome is a workload alias)", r.Workload, r.Genome)
	}
	if n.Workload == "" {
		n.Workload = n.Genome // genome names are workload aliases
	}
	if n.Workload == "" {
		n.Workload = "dna:human"
	}
	fam, preset, err := scenario.Resolve(n.Workload)
	if err != nil {
		return TuneRequest{}, fmt.Errorf("serve: %w", err)
	}
	n.Workload = preset.Qualified(fam)
	n.Genome = "" // folded into the canonical workload
	isDAG := fam.IsDAG()

	n.Platform = strings.ToLower(strings.TrimSpace(r.Platform))
	if n.Platform == "" {
		n.Platform = "paper"
	}
	if _, err := scenario.PlatformByName(n.Platform); err != nil {
		return TuneRequest{}, fmt.Errorf("serve: %w", err)
	}

	if n.SizeMB < 0 || math.IsNaN(n.SizeMB) || math.IsInf(n.SizeMB, 0) {
		return TuneRequest{}, fmt.Errorf("serve: size_mb %g must be finite and non-negative", n.SizeMB)
	}
	if isDAG && n.SizeMB != 0 && n.SizeMB != preset.SizeMB {
		// A task graph's size is the sum of its node works; it cannot be
		// rescaled by a divisor the way a divisible kernel can. The
		// preset's own size is accepted so canonical requests re-normalize
		// to themselves.
		return TuneRequest{}, fmt.Errorf("serve: workload %s is a task graph (%g MB of node work); size_mb cannot rescale it — omit it", n.Workload, preset.SizeMB)
	}
	if n.SizeMB == 0 {
		n.SizeMB = preset.SizeMB
	}

	if strings.TrimSpace(r.Method) == "" {
		n.Method = "SAML"
	} else {
		m, err := core.ParseMethod(r.Method)
		if err != nil {
			return TuneRequest{}, fmt.Errorf("serve: %w", err)
		}
		n.Method = m.String()
	}

	n.Strategy = strings.ToLower(strings.TrimSpace(r.Strategy))
	if n.Strategy == "" {
		n.Strategy = "auto"
	}
	if _, err := core.ParseStrategy(n.Strategy); err != nil {
		return TuneRequest{}, fmt.Errorf("serve: %w", err)
	}

	n.Objective = strings.ToLower(strings.TrimSpace(r.Objective))
	if n.Objective == "" {
		n.Objective = "time"
	}
	switch n.Objective {
	case "time", "energy", "weighted", "bounded":
	default:
		return TuneRequest{}, fmt.Errorf("serve: unknown objective %q (want time, energy, weighted or bounded)", r.Objective)
	}
	if isDAG && n.Objective != "time" {
		return TuneRequest{}, fmt.Errorf("serve: workload %s is a task graph; the placement simulator prices time only (objective %q unsupported)", n.Workload, n.Objective)
	}
	if math.IsNaN(n.Alpha) || math.IsInf(n.Alpha, 0) || math.IsNaN(n.Slack) || math.IsInf(n.Slack, 0) {
		return TuneRequest{}, fmt.Errorf("serve: alpha %g and slack %g must be finite", n.Alpha, n.Slack)
	}
	if n.Objective == "weighted" {
		if n.Alpha < 0 || n.Alpha > 1 {
			return TuneRequest{}, fmt.Errorf("serve: weighted objective needs alpha in [0,1], got %g", n.Alpha)
		}
	} else {
		n.Alpha = 0
	}
	if n.Objective == "bounded" {
		if n.Slack < 0 {
			return TuneRequest{}, fmt.Errorf("serve: bounded objective needs slack >= 0, got %g", n.Slack)
		}
	} else {
		n.Slack = 0
	}

	if n.Iterations < 0 {
		return TuneRequest{}, fmt.Errorf("serve: iterations %d must be non-negative", n.Iterations)
	}
	if n.Iterations == 0 {
		n.Iterations = 1000
	}
	if n.Restarts < 0 {
		return TuneRequest{}, fmt.Errorf("serve: restarts %d must be non-negative", n.Restarts)
	}
	if n.Restarts == 0 {
		n.Restarts = 1
	}

	if math.IsNaN(n.PoolGap) || math.IsInf(n.PoolGap, 0) || n.PoolGap < 0 {
		return TuneRequest{}, fmt.Errorf("serve: pool_gap %g must be finite and non-negative", n.PoolGap)
	}
	if n.PoolSize < 0 {
		return TuneRequest{}, fmt.Errorf("serve: pool_size %d must be non-negative", n.PoolSize)
	}
	if n.Strategy == "exact" {
		if n.PoolSize > strategy.MaxPoolSize {
			n.PoolSize = strategy.MaxPoolSize
		}
		if n.PoolSize > 0 && n.PoolGap == 0 {
			n.PoolGap = strategy.DefaultPoolGap
		}
		if n.PoolSize == 0 {
			n.PoolGap = 0
		}
	} else {
		// Exact-only knobs are canonicalized away for every other
		// strategy, exactly like Alpha outside the weighted objective.
		n.PoolSize, n.PoolGap, n.Prove = 0, 0, false
	}
	return n, nil
}

// AppendKey appends the canonical store key of a normalized request to
// dst and returns the extended slice — the allocation-free form of Key
// the warm-hit fast path uses with a pooled buffer (the sharded store
// looks entries up by key bytes directly). The format is pinned by
// golden tests; Key is defined as string(AppendKey(...)), so the two
// are byte-identical by construction.
func (r TuneRequest) AppendKey(dst []byte) []byte {
	dst = append(dst, "w="...)
	dst = append(dst, r.Workload...)
	dst = append(dst, "|p="...)
	dst = append(dst, r.Platform...)
	dst = append(dst, "|mb="...)
	dst = strconv.AppendFloat(dst, r.SizeMB, 'g', -1, 64)
	dst = append(dst, "|m="...)
	dst = append(dst, r.Method...)
	dst = append(dst, "|s="...)
	dst = append(dst, r.Strategy...)
	dst = append(dst, "|o="...)
	dst = append(dst, r.Objective...)
	dst = append(dst, "|a="...)
	dst = strconv.AppendFloat(dst, r.Alpha, 'g', -1, 64)
	dst = append(dst, "|sl="...)
	dst = strconv.AppendFloat(dst, r.Slack, 'g', -1, 64)
	dst = append(dst, "|it="...)
	dst = strconv.AppendInt(dst, int64(r.Iterations), 10)
	dst = append(dst, "|r="...)
	dst = strconv.AppendInt(dst, int64(r.Restarts), 10)
	dst = append(dst, "|seed="...)
	dst = strconv.AppendInt(dst, r.Seed, 10)
	// The exact-only knobs join the key only for the exact strategy. No
	// other strategy ever sees non-zero values (Normalize zeroes them),
	// so every pre-existing key keeps its exact bytes.
	if r.Strategy == "exact" {
		dst = append(dst, "|ps="...)
		dst = strconv.AppendInt(dst, int64(r.PoolSize), 10)
		dst = append(dst, "|pg="...)
		dst = strconv.AppendFloat(dst, r.PoolGap, 'g', -1, 64)
		dst = append(dst, "|pr="...)
		dst = strconv.AppendBool(dst, r.Prove)
	}
	return dst
}

// Key returns the canonical store key of a normalized request. The
// server's per-job search parallelism is deliberately not part of the
// key: results are bit-identical at every parallelism level, so runs
// that differ only in worker count share one store entry. Its format
// is pinned by golden tests.
func (r TuneRequest) Key() string {
	var buf [192]byte
	return string(r.AppendKey(buf[:0]))
}

// workload resolves the normalized request's workload and family.
func (r TuneRequest) workload() (scenario.Family, offload.Workload, error) {
	fam, preset, err := scenario.Resolve(r.Workload)
	if err != nil {
		return scenario.Family{}, offload.Workload{}, err
	}
	w, err := fam.Workload(preset.Name)
	if err != nil {
		return scenario.Family{}, offload.Workload{}, err
	}
	if r.SizeMB > 0 {
		w = w.Scaled(r.SizeMB)
	}
	return fam, w, nil
}

// ConfigWire is the JSON form of a suggested system configuration.
type ConfigWire struct {
	HostThreads    int     `json:"host_threads"`
	HostAffinity   string  `json:"host_affinity"`
	DeviceThreads  int     `json:"device_threads"`
	DeviceAffinity string  `json:"device_affinity"`
	HostFraction   float64 `json:"host_fraction"`
}

// configWire converts a space.Config to its wire form.
func configWire(c space.Config) ConfigWire {
	return ConfigWire{
		HostThreads:    c.HostThreads,
		HostAffinity:   c.HostAffinity.String(),
		DeviceThreads:  c.DeviceThreads,
		DeviceAffinity: c.DeviceAffinity.String(),
		HostFraction:   c.HostFraction,
	}
}

// TuneResult is the JSON form of a completed run. It carries no
// wall-clock fields: every field is a pure function of the canonical
// request, so identical requests marshal to bit-identical bytes.
type TuneResult struct {
	// Method that produced the result.
	Method string `json:"method"`
	// Config is the suggested configuration; Distribution renders it
	// the way the paper writes ratios.
	Config       ConfigWire `json:"config"`
	Distribution string     `json:"distribution"`
	// SearchObjective is the best objective value the search saw
	// (predictions for EML/SAML, measurements for EM/SAM).
	SearchObjective float64 `json:"search_objective"`
	// TimeSec is the measured makespan of the suggested configuration;
	// HostSec/DeviceSec are the per-side times.
	TimeSec   float64 `json:"time_sec"`
	HostSec   float64 `json:"host_sec"`
	DeviceSec float64 `json:"device_sec"`
	// EnergyJ is the measured total energy; HostJ/DeviceJ per side.
	EnergyJ float64 `json:"energy_j"`
	HostJ   float64 `json:"host_j"`
	DeviceJ float64 `json:"device_j"`
	// Objective names what the search minimized and MeasuredObjective
	// is its value on the fair-comparison measurement.
	Objective         string  `json:"objective"`
	MeasuredObjective float64 `json:"measured_objective"`
	// SearchEvaluations counts evaluator calls; Experiments counts the
	// distinct configurations this job evaluated on the measurement
	// path. Both are pure functions of the canonical request (a job is
	// charged for a configuration even when the cross-job shared memo
	// served it from another job's measurement, so cache warmth never
	// leaks into the result); physically, shared measurements are run
	// once per workload across the whole server.
	SearchEvaluations int `json:"search_evaluations"`
	Experiments       int `json:"experiments"`
	// Placement carries the task-graph placement of a DAG workload run;
	// nil for divisible workloads, whose answer lives in Config. For DAG
	// results Config holds the per-side execution configurations the
	// simulator priced nodes at (host fraction = share of node work on
	// the host), and the energy fields are zero — the graph simulator
	// prices time only.
	Placement *PlacementWire `json:"placement,omitempty"`
	// Certificate carries the exact strategy's optimality certificate
	// and Pool its diverse near-optimal solutions; both are omitted for
	// heuristic runs, keeping their wire bytes identical to the
	// pre-certificate format.
	Certificate *CertificateWire `json:"certificate,omitempty"`
	Pool        []PoolEntryWire  `json:"pool,omitempty"`
	// TimeReference carries the time-optimal reference run of the
	// bounded objective's two-phase pipeline; nil for every other
	// objective.
	TimeReference *TuneResult `json:"time_reference,omitempty"`
}

// CertificateWire is the JSON form of a branch-and-bound optimality
// certificate (strategy.Certificate).
type CertificateWire struct {
	// Optimal reports a proof: the tree was exhausted, so no
	// configuration beats the answer under the search's evaluator.
	Optimal bool `json:"optimal"`
	// LowerBound is the certified bound on the best achievable objective
	// and Gap the relative distance (best - LowerBound) / |best|; a
	// proved certificate closes the gap to zero.
	LowerBound float64 `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	// Explored and Pruned count search-tree states visited and discarded
	// by bound.
	Explored int `json:"explored"`
	Pruned   int `json:"pruned"`
}

// certificateWire converts a strategy certificate to its wire form.
func certificateWire(c *strategy.Certificate) *CertificateWire {
	if c == nil {
		return nil
	}
	return &CertificateWire{
		Optimal:    c.Optimal,
		LowerBound: c.LowerBound,
		Gap:        c.Gap,
		Explored:   c.Explored,
		Pruned:     c.Pruned,
	}
}

// PoolEntryWire is one member of the diverse solution pool: a decoded
// configuration (divisible workloads) or an encoded placement (task
// graphs), with the human-readable distribution and its objective value.
// Entries are sorted by objective; the first is the suggested optimum.
type PoolEntryWire struct {
	Config       *ConfigWire `json:"config,omitempty"`
	Encoded      string      `json:"encoded,omitempty"`
	Distribution string      `json:"distribution"`
	Objective    float64     `json:"objective"`
}

// PlacementWire is the JSON form of a tuned task-graph placement.
type PlacementWire struct {
	// Nodes lists every operator's assigned processor in topological
	// order; Encoded is the compact one-character-per-node 'h'/'d' form.
	Nodes   []NodePlacementWire `json:"nodes"`
	Encoded string              `json:"encoded"`
	// MakespanSec is the placement's simulated makespan; the three
	// baselines it is judged against follow.
	MakespanSec   float64 `json:"makespan_sec"`
	HostOnlySec   float64 `json:"host_only_sec"`
	DeviceOnlySec float64 `json:"device_only_sec"`
	RoundRobinSec float64 `json:"round_robin_sec"`
	// SpeedupVsHost is HostOnlySec / MakespanSec.
	SpeedupVsHost float64 `json:"speedup_vs_host"`
}

// NodePlacementWire is one operator's assignment in a PlacementWire.
type NodePlacementWire struct {
	Name   string `json:"name"`
	Device string `json:"device"`
}

// tuneResult converts a core.Result to its wire form.
func tuneResult(res core.Result) TuneResult {
	var pool []PoolEntryWire
	for _, e := range res.Pool {
		cw := configWire(e.Config)
		pool = append(pool, PoolEntryWire{
			Config:       &cw,
			Distribution: e.Config.String(),
			Objective:    e.Objective,
		})
	}
	return TuneResult{
		Certificate:       certificateWire(res.Cert),
		Pool:              pool,
		Method:            res.Method.String(),
		Config:            configWire(res.Config),
		Distribution:      res.Config.String(),
		SearchObjective:   res.SearchE,
		TimeSec:           res.Measured.E(),
		HostSec:           res.Measured.Host,
		DeviceSec:         res.Measured.Device,
		EnergyJ:           res.MeasuredEnergy.Total(),
		HostJ:             res.MeasuredEnergy.Host,
		DeviceJ:           res.MeasuredEnergy.Device,
		Objective:         res.Objective,
		MeasuredObjective: res.MeasuredObjective,
		SearchEvaluations: res.SearchEvaluations,
		Experiments:       res.Experiments,
	}
}

// dagTuneResult converts a completed placement search to the wire form.
// The divisible-result fields keep their meaning where one exists: the
// per-side times are each side's busy time, the measured objective is
// the makespan, and Config carries the side configurations the
// simulator priced nodes at.
func dagTuneResult(method core.Method, sim *graph.Sim, res graph.Result) TuneResult {
	rep := sim.Report(res.Placement)
	host, device := sim.SideNames()
	hostCfg, devCfg := sim.SideConfigs()
	pw := &PlacementWire{
		Encoded:       graph.PlacementString(res.Placement),
		MakespanSec:   res.MakespanSec,
		HostOnlySec:   res.HostOnlySec,
		DeviceOnlySec: res.DeviceOnlySec,
		RoundRobinSec: res.RoundRobinSec,
		SpeedupVsHost: res.SpeedupVsHost(),
	}
	w := sim.Workload()
	for i, side := range res.Placement {
		name := host
		if side&1 == graph.SideDevice {
			name = device
		}
		pw.Nodes = append(pw.Nodes, NodePlacementWire{Name: w.Nodes[i].Name, Device: name})
	}
	var pool []PoolEntryWire
	for _, e := range res.Pool {
		pool = append(pool, PoolEntryWire{
			Encoded:      graph.PlacementString(e.State),
			Distribution: sim.FormatPlacement(e.State),
			Objective:    e.Energy,
		})
	}
	return TuneResult{
		Certificate: certificateWire(res.Cert),
		Pool:        pool,
		Method:      method.String(),
		Config: ConfigWire{
			HostThreads:    hostCfg.Threads,
			HostAffinity:   hostCfg.Affinity.String(),
			DeviceThreads:  devCfg.Threads,
			DeviceAffinity: devCfg.Affinity.String(),
			HostFraction:   sim.HostWorkFraction(res.Placement),
		},
		Distribution:      sim.FormatPlacement(res.Placement),
		SearchObjective:   res.MakespanSec,
		TimeSec:           res.MakespanSec,
		HostSec:           rep.HostBusySec,
		DeviceSec:         rep.DeviceBusySec,
		Objective:         "time",
		MeasuredObjective: res.MakespanSec,
		SearchEvaluations: res.Evaluations,
		Experiments:       res.Evaluations,
		Placement:         pw,
	}
}

// JobState is the lifecycle phase of an async tuning job.
type JobState string

const (
	// JobQueued: accepted, waiting for a pool worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on a pool worker.
	JobRunning JobState = "running"
	// JobDone: completed; Result is set.
	JobDone JobState = "done"
	// JobFailed: the run returned an error; Error is set.
	JobFailed JobState = "failed"
	// JobRejected: the bounded queue was full (batch submissions report
	// rejected members in-line; single submissions get a 429 instead).
	JobRejected JobState = "rejected"
)

// JobStatus is the wire form of one job, returned by POST /v1/jobs and
// GET /v1/jobs/{id}.
type JobStatus struct {
	// ID addresses the job at GET /v1/jobs/{id}; empty for rejected
	// batch members (they were never registered).
	ID string `json:"id,omitempty"`
	// State is the lifecycle phase.
	State JobState `json:"state"`
	// Cached reports that Result was served from the warm-start store
	// rather than paid for by this job.
	Cached bool `json:"cached"`
	// Request is the canonical (normalized) request; Key its store key.
	Request TuneRequest `json:"request"`
	Key     string      `json:"key"`
	// Result is set once State is done.
	Result *TuneResult `json:"result,omitempty"`
	// Error is set when State is failed or rejected.
	Error string `json:"error,omitempty"`
}

// BatchRequest is the wire form of POST /v1/jobs:batch: an explicit
// request list, a template expanded over a list of alphas (the
// bi-objective sweep: each alpha becomes one weighted-objective request,
// so one call maps the time/energy front), or both.
type BatchRequest struct {
	// Requests are submitted as-is.
	Requests []TuneRequest `json:"requests,omitempty"`
	// Template plus Alphas expands into len(Alphas) weighted-objective
	// requests sharing every other template field.
	Template *TuneRequest `json:"template,omitempty"`
	Alphas   []float64    `json:"alphas,omitempty"`
}

// expand flattens the batch into the submission list.
func (b BatchRequest) expand() ([]TuneRequest, error) {
	reqs := append([]TuneRequest(nil), b.Requests...)
	if len(b.Alphas) > 0 {
		if b.Template == nil {
			return nil, fmt.Errorf("serve: batch alphas need a template request")
		}
		for _, a := range b.Alphas {
			t := *b.Template
			t.Objective = "weighted"
			t.Alpha = a
			reqs = append(reqs, t)
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: batch contains no requests")
	}
	return reqs, nil
}

// BatchResponse reports one JobStatus per expanded request, in
// submission order.
type BatchResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// Metrics is the wire form of GET /v1/metrics.
type Metrics struct {
	// Requests counts HTTP requests per endpoint.
	Requests map[string]int64 `json:"requests"`
	// Jobs counts job lifecycle events. StoreHits is the number of jobs
	// answered from the warm-start store.
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
		StoreHits int64 `json:"store_hits"`
	} `json:"jobs"`
	// Store is the warm-start store accounting: one lookup per
	// submitted job, Hits of which were served without a run.
	Store struct {
		Lookups   int64 `json:"lookups"`
		Hits      int64 `json:"hits"`
		Entries   int64 `json:"entries"`
		Evictions int64 `json:"evictions"`
	} `json:"store"`
	// Latency aggregates job service times, split into the warm-hit
	// fast path (submissions answered inline from the store) and the
	// cold-miss pool path (jobs that went through the queue). The
	// top-level counters are defined as the exact sums of the two
	// buckets, which is what makes the fast path observable: Count =
	// Warm.Count + Cold.Count and TotalMS = Warm.TotalMS + Cold.TotalMS.
	Latency struct {
		Count   int64         `json:"count"`
		TotalMS float64       `json:"total_ms"`
		MeanMS  float64       `json:"mean_ms"`
		Warm    LatencyBucket `json:"warm"`
		Cold    LatencyBucket `json:"cold"`
	} `json:"latency"`
	// Queue is the instantaneous pool state.
	Queue struct {
		Workers  int   `json:"workers"`
		Capacity int   `json:"capacity"`
		Depth    int64 `json:"depth"`
		Running  int64 `json:"running"`
	} `json:"queue"`
	// Cluster is the sharded-cluster routing and replication block;
	// omitted on a single-node server, keeping its wire bytes
	// identical to the pre-cluster format.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// LatencyBucket is one side of the warm/cold request-latency split.
type LatencyBucket struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// Health is the wire form of GET /v1/healthz.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
	Entries int    `json:"store_entries"`
}

// PresetWire is the JSON form of one workload size preset.
type PresetWire struct {
	// Name addresses the preset; Workload is the fully qualified
	// "family:preset" name accepted by TuneRequest.Workload.
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	SizeMB   float64 `json:"size_mb"`
}

// WorkloadWire is the JSON form of one registered workload family.
type WorkloadWire struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Class is the workload class ("dag" for task-graph families);
	// omitted for divisible families, the pre-graph-layer default.
	Class string `json:"class,omitempty"`
	// Default is the preset selected when only the family is named.
	Default string       `json:"default"`
	Presets []PresetWire `json:"presets"`
	// Aliases lists bare preset names that resolve to this family
	// (e.g. the genome names for "dna").
	Aliases []string `json:"aliases,omitempty"`
}

// PlatformWire is the JSON form of one registered platform spec.
type PlatformWire struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Host        string `json:"host"`
	Device      string `json:"device"`
	// Configurations is the size of the platform's configuration space.
	Configurations int `json:"configurations"`
}

// ScenariosResponse is the wire form of GET /v1/scenarios: the full
// catalog a client can tune against, i.e. every valid value of
// TuneRequest.Workload and TuneRequest.Platform.
type ScenariosResponse struct {
	Workloads []WorkloadWire `json:"workloads"`
	Platforms []PlatformWire `json:"platforms"`
}
