package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the service counters behind GET /v1/metrics.
// Job latency is accounted in two buckets — the warm-hit fast path
// (submissions answered inline from the store, no pool, no registry)
// and the cold-miss pool path — and the totals reported on the wire are
// defined as the sums of the buckets, so the split always adds up.
type metrics struct {
	requests  sync.Map // endpoint name -> *atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	storeHits atomic.Int64

	warmNanos atomic.Int64
	warmCount atomic.Int64
	coldNanos atomic.Int64
	coldCount atomic.Int64
}

func (m *metrics) request(endpoint string) {
	c, _ := m.requests.LoadOrStore(endpoint, &atomic.Int64{})
	c.(*atomic.Int64).Add(1)
}

// observeWarm records one warm-hit submission served inline.
func (m *metrics) observeWarm(d time.Duration) {
	m.warmNanos.Add(int64(d))
	m.warmCount.Add(1)
}

// observeCold records one pool job from submission to terminal state.
func (m *metrics) observeCold(d time.Duration) {
	m.coldNanos.Add(int64(d))
	m.coldCount.Add(1)
}

// warmHit bumps every counter a store-served submission touches.
func (m *metrics) warmHit(d time.Duration) {
	m.submitted.Add(1)
	m.storeHits.Add(1)
	m.completed.Add(1)
	m.observeWarm(d)
}

// Metrics snapshots the service counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Requests = map[string]int64{}
	s.met.requests.Range(func(k, v any) bool {
		m.Requests[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	m.Jobs.Submitted = s.met.submitted.Load()
	m.Jobs.Completed = s.met.completed.Load()
	m.Jobs.Failed = s.met.failed.Load()
	m.Jobs.Rejected = s.met.rejected.Load()
	m.Jobs.StoreHits = s.met.storeHits.Load()
	m.Store.Lookups = int64(s.store.Lookups())
	m.Store.Hits = int64(s.store.Hits())
	m.Store.Entries = int64(s.store.Len())
	m.Store.Evictions = int64(s.store.Evictions())
	m.Latency.Warm.Count = s.met.warmCount.Load()
	m.Latency.Warm.TotalMS = float64(s.met.warmNanos.Load()) / 1e6
	if m.Latency.Warm.Count > 0 {
		m.Latency.Warm.MeanMS = m.Latency.Warm.TotalMS / float64(m.Latency.Warm.Count)
	}
	m.Latency.Cold.Count = s.met.coldCount.Load()
	m.Latency.Cold.TotalMS = float64(s.met.coldNanos.Load()) / 1e6
	if m.Latency.Cold.Count > 0 {
		m.Latency.Cold.MeanMS = m.Latency.Cold.TotalMS / float64(m.Latency.Cold.Count)
	}
	// The totals are the exact bucket sums, so the split is verifiable.
	m.Latency.Count = m.Latency.Warm.Count + m.Latency.Cold.Count
	m.Latency.TotalMS = m.Latency.Warm.TotalMS + m.Latency.Cold.TotalMS
	if m.Latency.Count > 0 {
		m.Latency.MeanMS = m.Latency.TotalMS / float64(m.Latency.Count)
	}
	m.Queue.Workers = s.opt.Workers
	m.Queue.Capacity = s.pool.Capacity()
	m.Queue.Depth = s.pool.Depth()
	m.Queue.Running = s.pool.Running()
	m.Cluster = s.clusterMetrics()
	return m
}
