package perf

import (
	"sync"
	"sync/atomic"

	"hetopt/internal/machine"
)

// This file is the precomputed-table layer of the evaluator hot path
// (see DESIGN.md, "The hot path"). Every measurement used to recompute
// its placement from scratch: machine.Place allocates a per-core
// occupancy slice, a ThreadsOnCore slice and a sockets map, and is
// called four times per MeasureFull (host time, device time, host
// energy, device energy). Search loops evaluate the same few hundred
// (threads, affinity) pairs millions of times, so the model instead
// caches the two placement-derived quantities it actually needs:
//
//   - the streaming rate per (threads, affinity, trait-scaled core
//     rate, bytes-per-byte) — the full roofline-capped throughput;
//   - the used-core count per (threads, affinity) — the dynamic-power
//     input.
//
// Tables are built lazily and published through an atomic pointer:
// the read path is lock-free and allocation-free, misses clone the
// affected map copy-on-write under a mutex. Cached values are the
// bit-identical outputs of the original computation — the tables memo
// pure functions of their keys, they never change a value.
//
// Calibration and processor descriptions are exported fields, so a
// caller may mutate them after construction (tests zero the noise
// fields, ablations perturb constants). Every lookup therefore
// revalidates a fingerprint of all non-key inputs — the scalar
// calibration constants, the topology scalars and the identity of the
// SMT-gain and affinity slices — and drops the tables when it changed.
// The one mutation the fingerprint cannot see is writing elements of
// Cal.HostSMTGain/DeviceSMTGain or Processor.Affinities in place;
// replace the slice instead (nothing in the repo mutates them in
// place).

// rateKey identifies one cached throughput: the placement inputs plus
// the trait-dependent inputs of the roofline.
type rateKey struct {
	threads      int
	aff          machine.Affinity
	coreRate     float64
	bytesPerByte float64
}

// rateEntry is one memoized throughput computation.
type rateEntry struct {
	rate float64
	err  error
}

// placeKey identifies one cached placement summary.
type placeKey struct {
	threads int
	aff     machine.Affinity
}

// placeEntry is one memoized placement: the used-core count (the only
// placement output the power model consumes).
type placeEntry struct {
	coresUsed int
	err       error
}

// sideFP fingerprints every non-key input of one side's cached values.
type sideFP struct {
	proc                                       *machine.Processor
	sockets, coresPerSocket, threadsPerCore    int
	reservedCores                              int
	affPtr                                     *machine.Affinity
	affLen                                     int
	memBandwidthGBs                            float64
	smtPtr                                     *float64
	smtLen                                     int
	coreScalingExp, bandwidthEff, oversubDecay float64
	factorA, factorB                           float64 // compact/none (host), balanced/compact (device)
}

// tableFP fingerprints both sides; tables built under one fingerprint
// are valid exactly while the model still fingerprints the same.
type tableFP struct {
	host, device sideFP
}

// tables is one immutable published generation of the cache. Maps are
// never mutated after publication; misses clone the affected map.
type tables struct {
	fp        tableFP
	hostRate  map[rateKey]rateEntry
	devRate   map[rateKey]rateEntry
	hostPlace map[placeKey]placeEntry
	devPlace  map[placeKey]placeEntry
}

// tableCache is the per-model holder: an atomically published current
// generation plus a mutex serializing rebuilds and inserts.
type tableCache struct {
	mu  sync.Mutex
	cur atomic.Pointer[tables]
}

func firstFloat(s []float64) *float64 {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

func firstAff(s []machine.Affinity) *machine.Affinity {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

func procFP(p *machine.Processor) (fp sideFP) {
	fp.proc = p
	if p == nil {
		return fp
	}
	fp.sockets = p.Sockets
	fp.coresPerSocket = p.CoresPerSocket
	fp.threadsPerCore = p.ThreadsPerCore
	fp.reservedCores = p.ReservedCores
	fp.affPtr = firstAff(p.Affinities)
	fp.affLen = len(p.Affinities)
	fp.memBandwidthGBs = p.MemBandwidthGBs
	return fp
}

// fingerprint snapshots every non-key input of the cached computations.
func (m *Model) fingerprint() tableFP {
	h := procFP(m.Host)
	h.smtPtr = firstFloat(m.Cal.HostSMTGain)
	h.smtLen = len(m.Cal.HostSMTGain)
	h.coreScalingExp = m.Cal.HostCoreScalingExp
	h.bandwidthEff = m.Cal.BandwidthEfficiency
	h.oversubDecay = m.Cal.OversubscriptionDecay
	h.factorA = m.Cal.HostCompactBonus
	h.factorB = m.Cal.HostNonePenalty

	d := procFP(m.Device)
	d.smtPtr = firstFloat(m.Cal.DeviceSMTGain)
	d.smtLen = len(m.Cal.DeviceSMTGain)
	d.coreScalingExp = m.Cal.DeviceCoreScalingExp
	d.bandwidthEff = m.Cal.BandwidthEfficiency
	d.oversubDecay = m.Cal.OversubscriptionDecay
	d.factorA = m.Cal.DeviceBalancedBonus
	d.factorB = m.Cal.DeviceCompactBonus

	return tableFP{host: h, device: d}
}

// current returns the published tables when they are still valid under
// fp, nil otherwise (stale or never built). The read is lock-free.
func (c *tableCache) current(fp tableFP) *tables {
	t := c.cur.Load()
	if t == nil || t.fp != fp {
		return nil
	}
	return t
}

// insert publishes a new generation containing the prior entries (when
// still valid under fp) plus one new entry, applied by set to a cloned
// copy of the affected map. Concurrent inserts serialize on the mutex;
// readers keep using the prior generation until the new one is stored.
func (c *tableCache) insert(fp tableFP, set func(t *tables)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.cur.Load()
	next := &tables{fp: fp}
	if old != nil && old.fp == fp {
		// Share the untouched maps; set clones the one it writes.
		*next = *old
	}
	set(next)
	c.cur.Store(next)
}

func cloneRate(m map[rateKey]rateEntry) map[rateKey]rateEntry {
	out := make(map[rateKey]rateEntry, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePlace(m map[placeKey]placeEntry) map[placeKey]placeEntry {
	out := make(map[placeKey]placeEntry, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// hostRateDirect is the uncached host throughput computation — exactly
// the pre-table code path: place, derive the affinity factor, apply the
// scaling law and roofline.
func (m *Model) hostRateDirect(threads int, aff machine.Affinity, coreRate, bytesPerByte float64) (float64, error) {
	pl, err := machine.Place(m.Host, threads, aff)
	if err != nil {
		return 0, err
	}
	factor := 1.0
	switch aff {
	case machine.AffinityCompact:
		factor = m.Cal.HostCompactBonus
	case machine.AffinityNone:
		factor = m.Cal.HostNonePenalty
	}
	return throughput(m.Host, pl, coreRate,
		m.Cal.HostSMTGain, m.Cal.HostCoreScalingExp, factor, m.Cal.BandwidthEfficiency,
		bytesPerByte, m.Cal.OversubscriptionDecay), nil
}

// devRateDirect is the uncached device throughput computation.
func (m *Model) devRateDirect(threads int, aff machine.Affinity, coreRate, bytesPerByte float64) (float64, error) {
	pl, err := machine.Place(m.Device, threads, aff)
	if err != nil {
		return 0, err
	}
	factor := 1.0
	switch aff {
	case machine.AffinityBalanced:
		if pl.MaxShare() >= 2 {
			factor = m.Cal.DeviceBalancedBonus
		}
	case machine.AffinityCompact:
		factor = m.Cal.DeviceCompactBonus
	}
	return throughput(m.Device, pl, coreRate,
		m.Cal.DeviceSMTGain, m.Cal.DeviceCoreScalingExp, factor, m.Cal.BandwidthEfficiency,
		bytesPerByte, m.Cal.OversubscriptionDecay), nil
}

// hostRate returns the host throughput from the table, computing and
// inserting on miss. A nil cache (zero-value Model) computes directly.
func (m *Model) hostRate(threads int, aff machine.Affinity, coreRate, bytesPerByte float64) (float64, error) {
	if m.tab == nil {
		return m.hostRateDirect(threads, aff, coreRate, bytesPerByte)
	}
	fp := m.fingerprint()
	k := rateKey{threads: threads, aff: aff, coreRate: coreRate, bytesPerByte: bytesPerByte}
	if t := m.tab.current(fp); t != nil {
		if e, ok := t.hostRate[k]; ok {
			return e.rate, e.err
		}
	}
	rate, err := m.hostRateDirect(threads, aff, coreRate, bytesPerByte)
	m.tab.insert(fp, func(t *tables) {
		t.hostRate = cloneRate(t.hostRate)
		t.hostRate[k] = rateEntry{rate: rate, err: err}
	})
	return rate, err
}

// devRate is the device analogue of hostRate.
func (m *Model) devRate(threads int, aff machine.Affinity, coreRate, bytesPerByte float64) (float64, error) {
	if m.tab == nil {
		return m.devRateDirect(threads, aff, coreRate, bytesPerByte)
	}
	fp := m.fingerprint()
	k := rateKey{threads: threads, aff: aff, coreRate: coreRate, bytesPerByte: bytesPerByte}
	if t := m.tab.current(fp); t != nil {
		if e, ok := t.devRate[k]; ok {
			return e.rate, e.err
		}
	}
	rate, err := m.devRateDirect(threads, aff, coreRate, bytesPerByte)
	m.tab.insert(fp, func(t *tables) {
		t.devRate = cloneRate(t.devRate)
		t.devRate[k] = rateEntry{rate: rate, err: err}
	})
	return rate, err
}

// hostCoresUsed returns the used-core count of the host placement from
// the table, computing and inserting on miss.
func (m *Model) hostCoresUsed(threads int, aff machine.Affinity) (int, error) {
	if m.tab == nil {
		pl, err := machine.Place(m.Host, threads, aff)
		return pl.CoresUsed, err
	}
	fp := m.fingerprint()
	k := placeKey{threads: threads, aff: aff}
	if t := m.tab.current(fp); t != nil {
		if e, ok := t.hostPlace[k]; ok {
			return e.coresUsed, e.err
		}
	}
	pl, err := machine.Place(m.Host, threads, aff)
	m.tab.insert(fp, func(t *tables) {
		t.hostPlace = clonePlace(t.hostPlace)
		t.hostPlace[k] = placeEntry{coresUsed: pl.CoresUsed, err: err}
	})
	return pl.CoresUsed, err
}

// devCoresUsed is the device analogue of hostCoresUsed.
func (m *Model) devCoresUsed(threads int, aff machine.Affinity) (int, error) {
	if m.tab == nil {
		pl, err := machine.Place(m.Device, threads, aff)
		return pl.CoresUsed, err
	}
	fp := m.fingerprint()
	k := placeKey{threads: threads, aff: aff}
	if t := m.tab.current(fp); t != nil {
		if e, ok := t.devPlace[k]; ok {
			return e.coresUsed, e.err
		}
	}
	pl, err := machine.Place(m.Device, threads, aff)
	m.tab.insert(fp, func(t *tables) {
		t.devPlace = clonePlace(t.devPlace)
		t.devPlace[k] = placeEntry{coresUsed: pl.CoresUsed, err: err}
	})
	return pl.CoresUsed, err
}
