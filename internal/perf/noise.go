package perf

import (
	"math"
)

// noise returns the deterministic multiplicative perturbation
// 1 + sigma*z, with z a standard-normal draw keyed by (role, workload,
// assignment, trial) and clamped to +-3. sigma <= 0 disables noise.
func (m *Model) noise(role, workload string, a Assignment, trial int, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	z := normalFromKey(m.Cal.NoiseSeed, role, workload, a, trial)
	if z > 3 {
		z = 3
	} else if z < -3 {
		z = -3
	}
	f := 1 + sigma*z
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// FNV-1a constants (hash/fnv's 64-bit variant, inlined so the hot path
// hashes without constructing a hash.Hash64 or converting strings to
// byte slices — both heap-allocate on every measurement otherwise).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 folds v into the running FNV-1a hash as 8 little-endian
// bytes, byte-for-byte identical to binary.LittleEndian.PutUint64
// followed by Write.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// fnvString folds s into the running FNV-1a hash without converting it
// to a byte slice.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvByte folds one byte into the running FNV-1a hash.
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// measurementHash is the FNV-1a hash over the measurement key. It is
// pinned bit-identical to the original hash/fnv implementation
// (seed, role, 0, workload, 0, sizeKB, threads, affinity, trial with
// all integers little-endian) by TestMeasurementHashMatchesStdlibFNV.
func measurementHash(seed uint64, role, workload string, a Assignment, trial int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, seed)
	h = fnvString(h, role)
	h = fnvByte(h, 0)
	h = fnvString(h, workload)
	h = fnvByte(h, 0)
	// Quantize size to 1 KB so float formatting cannot perturb the key.
	h = fnvUint64(h, uint64(int64(a.SizeMB*1024)))
	h = fnvUint64(h, uint64(int64(a.Threads)))
	h = fnvUint64(h, uint64(int64(a.Affinity)))
	h = fnvUint64(h, uint64(int64(trial)))
	return h
}

// normalFromKey derives a standard-normal variate from the measurement key
// via FNV-1a hashing and the Box-Muller transform. The derivation is pure:
// equal keys always produce equal draws.
func normalFromKey(seed uint64, role, workload string, a Assignment, trial int) float64 {
	x := measurementHash(seed, role, workload, a, trial)

	// Two decorrelated 64-bit streams via splitmix64 finalizers.
	u1 := toUnit(splitmix64(x))
	u2 := toUnit(splitmix64(x ^ 0xD1B54A32D192ED03))
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the finalizer of the SplitMix64 generator; it decorrelates
// consecutive hash values into high-quality 64-bit mixes.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// toUnit maps a uint64 onto (0,1).
func toUnit(x uint64) float64 {
	return (float64(x>>11) + 0.5) / (1 << 53)
}
