package perf

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// noise returns the deterministic multiplicative perturbation
// 1 + sigma*z, with z a standard-normal draw keyed by (role, workload,
// assignment, trial) and clamped to +-3. sigma <= 0 disables noise.
func (m *Model) noise(role, workload string, a Assignment, trial int, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	z := normalFromKey(m.Cal.NoiseSeed, role, workload, a, trial)
	if z > 3 {
		z = 3
	} else if z < -3 {
		z = -3
	}
	f := 1 + sigma*z
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// normalFromKey derives a standard-normal variate from the measurement key
// via FNV-1a hashing and the Box-Muller transform. The derivation is pure:
// equal keys always produce equal draws.
func normalFromKey(seed uint64, role, workload string, a Assignment, trial int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	h.Write([]byte(role))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	h.Write([]byte{0})
	// Quantize size to 1 KB so float formatting cannot perturb the key.
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(a.SizeMB*1024)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(a.Threads)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(a.Affinity)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(trial)))
	h.Write(buf[:])
	x := h.Sum64()

	// Two decorrelated 64-bit streams via splitmix64 finalizers.
	u1 := toUnit(splitmix64(x))
	u2 := toUnit(splitmix64(x ^ 0xD1B54A32D192ED03))
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the finalizer of the SplitMix64 generator; it decorrelates
// consecutive hash values into high-quality 64-bit mixes.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// toUnit maps a uint64 onto (0,1).
func toUnit(x uint64) float64 {
	return (float64(x>>11) + 0.5) / (1 << 53)
}
