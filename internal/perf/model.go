// Package perf provides the analytic performance model that substitutes
// for the paper's physical testbed (2x Intel Xeon E5-2695v2 + Intel Xeon
// Phi 7120P). See DESIGN.md, "Hardware substitution".
//
// The model predicts the execution time of the DNA-analysis workload on a
// processor as
//
//	T = setup + work / throughput (+ offload overhead on the device)
//
// where throughput follows a placement-aware scaling law:
//
//	throughput = coreRate * coresUsed^(gamma-1) * sum_c smtGain(threadsOn(c)) * affinityFactor
//
// capped by the processor's effective memory bandwidth. The device adds the
// offload cost of the Intel "offload" programming model used by the paper:
// a fixed launch/teardown latency plus a PCIe transfer that overlaps with
// computation (the paper explicitly overlaps offloaded parts with host
// execution), leaving a small non-overlapped residual.
//
// Every constant lives in Calibration so tests and ablations can perturb
// them. Defaults are calibrated to reproduce the qualitative behaviour of
// the paper (see DESIGN.md and EXPERIMENTS.md): CPU-only wins on small
// inputs, 60/40-70/30 splits win on large inputs with 48 host threads,
// device-heavy splits win when the host has few threads, heterogeneous
// execution is ~1.7x faster than host-only and ~2x faster than
// device-only, host times span roughly 0.06-40 s across the configuration
// space, and the device time span is wider than the host one.
//
// Measurements carry deterministic, configuration-keyed noise so that the
// simulator behaves like a stable testbed: re-measuring a configuration
// with the same trial index reproduces the same value, while distinct
// configurations observe independent perturbations.
package perf

import (
	"fmt"
	"math"

	"hetopt/internal/machine"
)

// Traits describes workload-level properties that scale execution time
// independently of the assigned size. The zero value (beyond Name)
// reproduces the reference workload — the paper's DNA matching — so
// genome workloads are bit-identical to the pre-scenario-layer model.
type Traits struct {
	// Name identifies the input (e.g. the genome); it keys measurement
	// noise so distinct inputs observe distinct perturbations.
	Name string
	// Complexity multiplies execution time relative to the reference
	// input (human = 1.0). It models composition-dependent matching cost.
	Complexity float64
	// BytesPerByte, when positive, overrides Calibration.BytesPerByte:
	// the workload's memory traffic per input byte. It is the
	// arithmetic-intensity knob of the scenario layer — bandwidth-bound
	// kernels (SpMV, stencils) move several bytes per input byte and hit
	// the roofline, compute-bound kernels barely touch memory.
	BytesPerByte float64
	// HostRateFactor and DeviceRateFactor, when positive, scale the
	// per-core streaming rates relative to the reference workload (1.0).
	// They model how well the workload maps onto each side's
	// microarchitecture: an irregular-access kernel may run at a
	// fraction of the reference rate on a throughput-oriented device
	// while a vector-friendly one exceeds it.
	HostRateFactor, DeviceRateFactor float64
}

// complexityOrDefault treats a zero Complexity as 1.0 so that a zero-value
// Traits behaves like the reference workload.
func (t Traits) complexityOrDefault() float64 {
	if t.Complexity <= 0 {
		return 1
	}
	return t.Complexity
}

// factorOrDefault treats a non-positive rate factor as 1.0.
func factorOrDefault(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

// bytesPerByteOr returns the workload's traffic ratio, falling back to
// the calibration default.
func (t Traits) bytesPerByteOr(def float64) float64 {
	if t.BytesPerByte > 0 {
		return t.BytesPerByte
	}
	return def
}

// Assignment is the share of work mapped to one processor together with
// the processor-local configuration.
type Assignment struct {
	// SizeMB is the amount of input assigned, in megabytes. Zero means
	// the processor is idle.
	SizeMB float64
	// Threads is the number of software threads to run.
	Threads int
	// Affinity is the pinning strategy.
	Affinity machine.Affinity
}

// Calibration collects every constant of the analytic model.
type Calibration struct {
	// HostCoreRateMBs is the single-thread streaming match rate of one
	// host core in MB/s.
	HostCoreRateMBs float64
	// HostSMTGain[k-1] is the combined throughput of one host core
	// carrying k threads, relative to one thread.
	HostSMTGain []float64
	// HostCoreScalingExp is the cross-core scaling exponent gamma for the
	// host (1.0 = perfectly linear).
	HostCoreScalingExp float64
	// HostSetupSec is the fixed host-side preparation cost (automaton
	// construction, buffer setup).
	HostSetupSec float64
	// HostThreadSpawnSec is the per-thread startup cost on the host.
	HostThreadSpawnSec float64
	// HostCompactBonus multiplies throughput under compact affinity
	// (shared-L3 locality); HostNonePenalty multiplies it under OS
	// scheduling (migrations).
	HostCompactBonus, HostNonePenalty float64

	// Device analogues of the host constants.
	DeviceCoreRateMBs    float64
	DeviceSMTGain        []float64
	DeviceCoreScalingExp float64
	DeviceSetupSec       float64
	DeviceThreadSpawnSec float64
	// DeviceBalancedBonus applies under balanced affinity when cores
	// carry at least two threads; DeviceCompactBonus under compact.
	DeviceBalancedBonus, DeviceCompactBonus float64

	// OffloadLatencySec is the fixed offload cost (runtime init, kernel
	// launch, result gather) paid whenever the device receives work.
	OffloadLatencySec float64
	// PCIeRateMBs is the effective host-device transfer rate.
	PCIeRateMBs float64
	// TransferResidual is the fraction of the transfer that cannot be
	// overlapped with device computation.
	TransferResidual float64

	// BandwidthEfficiency derates the spec memory bandwidth to an
	// achievable streaming ceiling.
	BandwidthEfficiency float64
	// BytesPerByte is the memory traffic per input byte of the workload
	// (1.0 for streaming DFA matching over resident tables).
	BytesPerByte float64

	// OversubscriptionDecay multiplies per-core gain for each thread
	// beyond the SMT width (scheduling overhead).
	OversubscriptionDecay float64

	// NoiseStdHost and NoiseStdDevice are relative standard deviations of
	// measurement noise; NoiseNoneFactor scales host noise under
	// AffinityNone. NoiseSeed decorrelates entire experiments.
	NoiseStdHost, NoiseStdDevice float64
	NoiseNoneFactor              float64
	NoiseSeed                    uint64

	// Power model (see power.go). A unit that receives work draws
	// IdleW for the whole run plus a dynamic increment while busy:
	//
	//	P_dyn = CoreActiveW * coresUsed + ThreadActiveW * threads
	//
	// scaled by HostNonePowerFactor when the OS schedules host threads
	// freely (migrations waste dynamic power). A unit with no work is
	// considered disengaged (powered down) and consumes nothing.
	HostIdleW, HostCoreActiveW, HostThreadActiveW       float64
	DeviceIdleW, DeviceCoreActiveW, DeviceThreadActiveW float64
	HostNonePowerFactor                                 float64
	// NoiseStdHostPower and NoiseStdDevicePower are the relative standard
	// deviations of energy-measurement noise, keyed like timing noise.
	NoiseStdHostPower, NoiseStdDevicePower float64
}

// DefaultCalibration returns the constants used for the reproduction.
// EXPERIMENTS.md records the resulting paper-vs-measured comparison.
func DefaultCalibration() Calibration {
	return Calibration{
		HostCoreRateMBs:    230,
		HostSMTGain:        []float64{1.0, 1.30},
		HostCoreScalingExp: 0.93,
		HostSetupSec:       0.05,
		HostThreadSpawnSec: 0.0002,
		HostCompactBonus:   1.02,
		HostNonePenalty:    0.96,

		DeviceCoreRateMBs:    44,
		DeviceSMTGain:        []float64{1.0, 1.80, 2.20, 2.40},
		DeviceCoreScalingExp: 0.97,
		DeviceSetupSec:       0.02,
		DeviceThreadSpawnSec: 0.00005,
		DeviceBalancedBonus:  1.03,
		DeviceCompactBonus:   1.02,

		OffloadLatencySec: 0.105,
		PCIeRateMBs:       6500,
		TransferResidual:  0.02,

		BandwidthEfficiency: 0.80,
		BytesPerByte:        1.0,

		OversubscriptionDecay: 0.97,

		NoiseStdHost:    0.035,
		NoiseStdDevice:  0.022,
		NoiseNoneFactor: 1.5,
		NoiseSeed:       0x9E3779B97F4A7C15,

		// Power: the host peaks near 193 W (2x 115 W TDP packages derated
		// to sustained draw), the Phi near 299 W (300 W TDP card). The
		// host delivers ~1.5x more throughput per watt, which is what
		// makes the time/energy trade-off non-trivial.
		HostIdleW:           75,
		HostCoreActiveW:     4.2,
		HostThreadActiveW:   0.35,
		DeviceIdleW:         105,
		DeviceCoreActiveW:   2.6,
		DeviceThreadActiveW: 0.16,
		HostNonePowerFactor: 1.05,

		NoiseStdHostPower:   0.015,
		NoiseStdDevicePower: 0.012,
	}
}

// Model evaluates execution times for a host/device pair.
type Model struct {
	Host   *machine.Processor
	Device *machine.Processor
	Cal    Calibration

	// tab caches placement-derived throughput and used-core tables so
	// the evaluation hot path does lookups instead of recomputing
	// placements (see tables.go). Nil (zero-value Model) computes
	// directly; cached values are bit-identical to direct computation.
	tab *tableCache
}

// NewModel builds a model from a platform description: host and device
// processors plus the calibration constants. The scenario layer
// (internal/scenario) constructs models from registered platform specs
// through this constructor.
func NewModel(host, device *machine.Processor, cal Calibration) *Model {
	return &Model{Host: host, Device: device, Cal: cal, tab: &tableCache{}}
}

// NewPaperModel returns a model of the paper's platform (2x Xeon
// E5-2695v2 + Xeon Phi 7120P) with default calibration.
func NewPaperModel() *Model {
	return NewModel(machine.XeonE5Host(), machine.XeonPhi7120P(), DefaultCalibration())
}

// throughput computes the placement-aware streaming rate in MB/s.
func throughput(p *machine.Processor, pl machine.Placement, coreRate float64, smtGain []float64, gamma, affinityFactor, bwEff, bytesPerByte, overDecay float64) float64 {
	if pl.CoresUsed == 0 {
		return 0
	}
	gainSum := 0.0
	for i, nCores := range pl.ThreadsOnCore {
		if nCores == 0 {
			continue
		}
		k := i + 1 // threads sharing the core
		var g float64
		if k <= len(smtGain) {
			g = smtGain[k-1]
		} else {
			// Oversubscribed: flat at the last SMT gain with a decay per
			// extra thread.
			g = smtGain[len(smtGain)-1] * math.Pow(overDecay, float64(k-len(smtGain)))
		}
		gainSum += g * float64(nCores)
	}
	scale := math.Pow(float64(pl.CoresUsed), gamma-1)
	rate := coreRate * scale * gainSum * affinityFactor
	// Memory-bandwidth roofline.
	if bytesPerByte > 0 {
		ceiling := p.MemBandwidthGBs * 1000 * bwEff / bytesPerByte
		if rate > ceiling {
			rate = ceiling
		}
	}
	return rate
}

// HostThroughputMBs returns the modeled host streaming rate for a thread
// count and affinity, for the reference workload.
func (m *Model) HostThroughputMBs(threads int, aff machine.Affinity) (float64, error) {
	return m.HostThroughputFor(threads, aff, Traits{})
}

// HostThroughputFor returns the modeled host streaming rate for a thread
// count and affinity under a workload's traits: the per-core rate scales
// with HostRateFactor and the roofline with the workload's
// bytes-per-byte traffic ratio. Zero-value traits reproduce
// HostThroughputMBs exactly. Rates are served from the model's
// precomputed table (tables.go); the trait-scaled core rate and traffic
// ratio are part of the key, so distinct workloads never share an entry.
func (m *Model) HostThroughputFor(threads int, aff machine.Affinity, w Traits) (float64, error) {
	return m.hostRate(threads, aff,
		m.Cal.HostCoreRateMBs*factorOrDefault(w.HostRateFactor),
		w.bytesPerByteOr(m.Cal.BytesPerByte))
}

// DeviceThroughputMBs returns the modeled device streaming rate for a
// thread count and affinity, for the reference workload.
func (m *Model) DeviceThroughputMBs(threads int, aff machine.Affinity) (float64, error) {
	return m.DeviceThroughputFor(threads, aff, Traits{})
}

// DeviceThroughputFor is the device analogue of HostThroughputFor.
func (m *Model) DeviceThroughputFor(threads int, aff machine.Affinity, w Traits) (float64, error) {
	return m.devRate(threads, aff,
		m.Cal.DeviceCoreRateMBs*factorOrDefault(w.DeviceRateFactor),
		w.bytesPerByteOr(m.Cal.BytesPerByte))
}

// HostTime returns the modeled execution time in seconds of the host share.
// trial selects an independent noise draw; reusing a trial reproduces the
// identical measurement.
func (m *Model) HostTime(a Assignment, w Traits, trial int) (float64, error) {
	if a.SizeMB < 0 {
		return 0, fmt.Errorf("perf: negative host size %g", a.SizeMB)
	}
	if a.SizeMB == 0 {
		return 0, nil
	}
	rate, err := m.HostThroughputFor(a.Threads, a.Affinity, w)
	if err != nil {
		return 0, err
	}
	work := a.SizeMB * w.complexityOrDefault()
	t := m.Cal.HostSetupSec + m.Cal.HostThreadSpawnSec*float64(a.Threads) + work/rate
	sigma := m.Cal.NoiseStdHost
	if a.Affinity == machine.AffinityNone {
		sigma *= m.Cal.NoiseNoneFactor
	}
	return t * m.noise("host", w.Name, a, trial, sigma), nil
}

// DeviceTime returns the modeled execution time in seconds of the device
// share, including offload overhead (launch latency plus the
// non-overlapped part of the PCIe transfer).
func (m *Model) DeviceTime(a Assignment, w Traits, trial int) (float64, error) {
	if a.SizeMB < 0 {
		return 0, fmt.Errorf("perf: negative device size %g", a.SizeMB)
	}
	if a.SizeMB == 0 {
		return 0, nil
	}
	rate, err := m.DeviceThroughputFor(a.Threads, a.Affinity, w)
	if err != nil {
		return 0, err
	}
	work := a.SizeMB * w.complexityOrDefault()
	compute := m.Cal.DeviceSetupSec + m.Cal.DeviceThreadSpawnSec*float64(a.Threads) + work/rate
	transfer := a.SizeMB / m.Cal.PCIeRateMBs
	// Transfer overlaps computation; the slower of the two dominates and a
	// residual fraction of the transfer cannot be hidden.
	t := m.Cal.OffloadLatencySec + math.Max(compute, transfer) + m.Cal.TransferResidual*transfer
	return t * m.noise("device", w.Name, a, trial, m.Cal.NoiseStdDevice), nil
}
