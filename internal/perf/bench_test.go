package perf

import (
	"testing"

	"hetopt/internal/machine"
)

func BenchmarkHostTime(b *testing.B) {
	b.ReportAllocs()
	m := NewPaperModel()
	a := Assignment{SizeMB: 1948, Threads: 48, Affinity: machine.AffinityScatter}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.HostTime(a, human, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceTime(b *testing.B) {
	b.ReportAllocs()
	m := NewPaperModel()
	a := Assignment{SizeMB: 1298, Threads: 240, Affinity: machine.AffinityBalanced}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DeviceTime(a, human, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughputPlacement(b *testing.B) {
	b.ReportAllocs()
	m := NewPaperModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.HostThroughputMBs(36, machine.AffinityCompact); err != nil {
			b.Fatal(err)
		}
	}
}
