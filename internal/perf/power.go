package perf

import "hetopt/internal/machine"

// This file is the power/energy side of the analytic model, the substrate
// of the bi-objective extension (see DESIGN.md, "Objectives and the energy
// model"). Each processing unit that receives work draws its static power
// for the whole heterogeneous run (it is engaged and cannot sleep while
// the other side still computes) plus a placement-aware dynamic increment
// while its own share is executing:
//
//	P_active = IdleW + CoreActiveW * coresUsed + ThreadActiveW * threads
//
// A unit with no work assigned is disengaged and consumes nothing, which
// models powering the card down (or never reserving it). Energy
// measurements carry the same deterministic, configuration-keyed noise
// discipline as timing measurements: re-measuring a configuration with
// the same trial reproduces the identical joule value.

// HostActivePowerW returns the modeled host power draw in watts while the
// host share executes with the given thread count and affinity. The value
// is deterministic (no measurement noise); it is what the predictor path
// composes with predicted times.
func (m *Model) HostActivePowerW(threads int, aff machine.Affinity) (float64, error) {
	coresUsed, err := m.hostCoresUsed(threads, aff)
	if err != nil {
		return 0, err
	}
	dyn := m.Cal.HostCoreActiveW*float64(coresUsed) + m.Cal.HostThreadActiveW*float64(threads)
	if aff == machine.AffinityNone && m.Cal.HostNonePowerFactor > 0 {
		dyn *= m.Cal.HostNonePowerFactor
	}
	return m.Cal.HostIdleW + dyn, nil
}

// DeviceActivePowerW returns the modeled device power draw in watts while
// the device share executes.
func (m *Model) DeviceActivePowerW(threads int, aff machine.Affinity) (float64, error) {
	coresUsed, err := m.devCoresUsed(threads, aff)
	if err != nil {
		return 0, err
	}
	dyn := m.Cal.DeviceCoreActiveW*float64(coresUsed) + m.Cal.DeviceThreadActiveW*float64(threads)
	return m.Cal.DeviceIdleW + dyn, nil
}

// HostModeledEnergy returns the noise-free analytic joules an engaged
// host consumes when its share keeps it busy for busySec of a
// makespanSec-long run: active power while busy, static power for the
// rest. It is the shared pricing core of both the measurement path
// (HostEnergy, which adds noise) and the prediction path (the Predictor
// prices learned times through it).
func (m *Model) HostModeledEnergy(threads int, aff machine.Affinity, busySec, makespanSec float64) (float64, error) {
	p, err := m.HostActivePowerW(threads, aff)
	if err != nil {
		return 0, err
	}
	if makespanSec < busySec {
		makespanSec = busySec
	}
	return p*busySec + m.Cal.HostIdleW*(makespanSec-busySec), nil
}

// DeviceModeledEnergy is the device analogue of HostModeledEnergy.
func (m *Model) DeviceModeledEnergy(threads int, aff machine.Affinity, busySec, makespanSec float64) (float64, error) {
	p, err := m.DeviceActivePowerW(threads, aff)
	if err != nil {
		return 0, err
	}
	if makespanSec < busySec {
		makespanSec = busySec
	}
	return p*busySec + m.Cal.DeviceIdleW*(makespanSec-busySec), nil
}

// HostEnergy returns the measured energy in joules the host consumes
// during a heterogeneous run of makespanSec seconds in which its own
// share keeps it busy for busySec. A zero-size assignment is disengaged
// and consumes nothing. trial selects the noise draw exactly as HostTime
// does; equal keys reproduce equal measurements.
func (m *Model) HostEnergy(a Assignment, w Traits, trial int, busySec, makespanSec float64) (float64, error) {
	if a.SizeMB <= 0 {
		return 0, nil
	}
	e, err := m.HostModeledEnergy(a.Threads, a.Affinity, busySec, makespanSec)
	if err != nil {
		return 0, err
	}
	return e * m.noise("host-energy", w.Name, a, trial, m.Cal.NoiseStdHostPower), nil
}

// DeviceEnergy is the device analogue of HostEnergy.
func (m *Model) DeviceEnergy(a Assignment, w Traits, trial int, busySec, makespanSec float64) (float64, error) {
	if a.SizeMB <= 0 {
		return 0, nil
	}
	e, err := m.DeviceModeledEnergy(a.Threads, a.Affinity, busySec, makespanSec)
	if err != nil {
		return 0, err
	}
	return e * m.noise("device-energy", w.Name, a, trial, m.Cal.NoiseStdDevicePower), nil
}
