package perf

import (
	"math"
	"testing"

	"hetopt/internal/machine"
)

func TestActivePowerMonotoneInThreads(t *testing.T) {
	m := NewPaperModel()
	prev := 0.0
	for _, threads := range []int{2, 6, 12, 24, 36, 48} {
		p, err := m.HostActivePowerW(threads, machine.AffinityScatter)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("host power %g W at %d threads not above %g W", p, threads, prev)
		}
		if p <= m.Cal.HostIdleW {
			t.Fatalf("active power %g W must exceed idle %g W", p, m.Cal.HostIdleW)
		}
		prev = p
	}
	prev = 0.0
	for _, threads := range []int{2, 30, 120, 240} {
		p, err := m.DeviceActivePowerW(threads, machine.AffinityBalanced)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("device power %g W at %d threads not above %g W", p, threads, prev)
		}
		prev = p
	}
}

func TestActivePowerPlausibleRange(t *testing.T) {
	// Full load must land near the hardware's sustained draw: below the
	// combined TDP, above the idle floor.
	m := NewPaperModel()
	host, err := m.HostActivePowerW(48, machine.AffinityScatter)
	if err != nil {
		t.Fatal(err)
	}
	if host < 150 || host > 230 {
		t.Errorf("host full-load power %g W outside the 2x115 W TDP envelope", host)
	}
	dev, err := m.DeviceActivePowerW(240, machine.AffinityBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if dev < 200 || dev > 300 {
		t.Errorf("device full-load power %g W outside the 300 W TDP envelope", dev)
	}
}

func TestAffinityNonePowerPenalty(t *testing.T) {
	m := NewPaperModel()
	scatter, err := m.HostActivePowerW(24, machine.AffinityScatter)
	if err != nil {
		t.Fatal(err)
	}
	none, err := m.HostActivePowerW(24, machine.AffinityNone)
	if err != nil {
		t.Fatal(err)
	}
	if none <= scatter {
		t.Errorf("OS scheduling (%g W) should draw more than scatter (%g W)", none, scatter)
	}
}

func TestEnergyDeterministicAndKeyed(t *testing.T) {
	m := NewPaperModel()
	a := Assignment{SizeMB: 1000, Threads: 48, Affinity: machine.AffinityScatter}
	w := Traits{Name: "human"}
	e1, err := m.HostEnergy(a, w, 0, 2.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.HostEnergy(a, w, 0, 2.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("same key produced %g and %g J", e1, e2)
	}
	e3, err := m.HostEnergy(a, w, 1, 2.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("different trials should observe different noise draws")
	}
	// The noise is a small relative perturbation around the analytic
	// value P_active*busy + P_idle*(makespan-busy).
	p, err := m.HostActivePowerW(a.Threads, a.Affinity)
	if err != nil {
		t.Fatal(err)
	}
	want := p*2.0 + m.Cal.HostIdleW*0.5
	if math.Abs(e1-want)/want > 5*m.Cal.NoiseStdHostPower {
		t.Fatalf("energy %g J too far from analytic %g J", e1, want)
	}
}

func TestEnergyDisengagedUnit(t *testing.T) {
	m := NewPaperModel()
	w := Traits{Name: "human"}
	e, err := m.HostEnergy(Assignment{SizeMB: 0, Threads: 48}, w, 0, 0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("a unit with no work must consume nothing, got %g J", e)
	}
	e, err = m.DeviceEnergy(Assignment{SizeMB: 0, Threads: 240}, w, 0, 0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("a disengaged device must consume nothing, got %g J", e)
	}
}

func TestEnergyRejectsInvalidPlacement(t *testing.T) {
	m := NewPaperModel()
	w := Traits{Name: "human"}
	if _, err := m.HostEnergy(Assignment{SizeMB: 10, Threads: -1, Affinity: machine.AffinityScatter}, w, 0, 1, 1); err == nil {
		t.Error("negative thread count should fail")
	}
	if _, err := m.DeviceEnergy(Assignment{SizeMB: 10, Threads: -1, Affinity: machine.AffinityBalanced}, w, 0, 1, 1); err == nil {
		t.Error("negative device thread count should fail")
	}
}
