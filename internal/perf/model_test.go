package perf

import (
	"math"
	"testing"
	"testing/quick"

	"hetopt/internal/machine"
)

// quiet returns a model with noise disabled, for deterministic assertions
// about the mean behaviour.
func quiet() *Model {
	m := NewPaperModel()
	m.Cal.NoiseStdHost = 0
	m.Cal.NoiseStdDevice = 0
	return m
}

var human = Traits{Name: "human", Complexity: 1}

func TestHostTimeZeroSize(t *testing.T) {
	m := quiet()
	got, err := m.HostTime(Assignment{SizeMB: 0, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
	if err != nil || got != 0 {
		t.Fatalf("zero-size host time = %g, %v; want 0, nil", got, err)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	m := quiet()
	if _, err := m.HostTime(Assignment{SizeMB: -1, Threads: 4, Affinity: machine.AffinityScatter}, human, 0); err == nil {
		t.Error("negative host size should fail")
	}
	if _, err := m.DeviceTime(Assignment{SizeMB: -1, Threads: 4, Affinity: machine.AffinityScatter}, human, 0); err == nil {
		t.Error("negative device size should fail")
	}
}

func TestInvalidAffinityRejected(t *testing.T) {
	m := quiet()
	if _, err := m.HostTime(Assignment{SizeMB: 10, Threads: 4, Affinity: machine.AffinityBalanced}, human, 0); err == nil {
		t.Error("balanced on host should fail")
	}
	if _, err := m.DeviceTime(Assignment{SizeMB: 10, Threads: 4, Affinity: machine.AffinityNone}, human, 0); err == nil {
		t.Error("none on device should fail")
	}
}

func TestHostTimeMonotoneInSize(t *testing.T) {
	m := quiet()
	prev := 0.0
	for _, size := range []float64{100, 500, 1000, 2000, 3250} {
		got, err := m.HostTime(Assignment{SizeMB: size, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Fatalf("time %g at %g MB not greater than %g", got, size, prev)
		}
		prev = got
	}
}

func TestHostMoreThreadsFaster(t *testing.T) {
	m := quiet()
	prev := math.Inf(1)
	for _, n := range []int{2, 6, 12, 24, 48} {
		got, err := m.HostTime(Assignment{SizeMB: 3250, Threads: n, Affinity: machine.AffinityScatter}, human, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Fatalf("host %dT = %gs, not faster than previous %gs", n, got, prev)
		}
		prev = got
	}
}

func TestDeviceMoreThreadsFaster(t *testing.T) {
	m := quiet()
	prev := math.Inf(1)
	for _, n := range []int{2, 8, 30, 60, 120, 240} {
		got, err := m.DeviceTime(Assignment{SizeMB: 3250, Threads: n, Affinity: machine.AffinityBalanced}, human, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Fatalf("device %dT = %gs, not faster than previous %gs", n, got, prev)
		}
		prev = got
	}
}

func TestSublinearScaling(t *testing.T) {
	// Doubling threads must help, but less than 2x (gamma < 1 and SMT).
	m := quiet()
	t12, _ := m.HostThroughputMBs(12, machine.AffinityScatter)
	t24, _ := m.HostThroughputMBs(24, machine.AffinityScatter)
	if t24 <= t12 || t24 >= 2*t12 {
		t.Fatalf("scaling 12->24: %g -> %g, want sublinear speedup", t12, t24)
	}
}

func TestHyperThreadingGain(t *testing.T) {
	// 48 threads on 24 cores must beat 24 threads, by less than 30%.
	m := quiet()
	t24, _ := m.HostThroughputMBs(24, machine.AffinityScatter)
	t48, _ := m.HostThroughputMBs(48, machine.AffinityScatter)
	gain := t48 / t24
	if gain <= 1.0 || gain > 1.31 {
		t.Fatalf("HT gain = %g, want (1, 1.31]", gain)
	}
}

func TestCompactSlowerAtLowCounts(t *testing.T) {
	// Compact packs 2 threads on 1 core; scatter uses 2 cores: scatter
	// must win at low thread counts.
	m := quiet()
	sc, _ := m.HostThroughputMBs(2, machine.AffinityScatter)
	co, _ := m.HostThroughputMBs(2, machine.AffinityCompact)
	if co >= sc {
		t.Fatalf("compact 2T (%g) should be slower than scatter 2T (%g)", co, sc)
	}
}

func TestNonePenalty(t *testing.T) {
	m := quiet()
	sc, _ := m.HostThroughputMBs(24, machine.AffinityScatter)
	no, _ := m.HostThroughputMBs(24, machine.AffinityNone)
	if no >= sc {
		t.Fatalf("none (%g) should be slower than scatter (%g)", no, sc)
	}
}

func TestPaperShapeSmallInputPrefersCPUOnly(t *testing.T) {
	// Figure 2a: with 190 MB and 48 host threads, CPU-only beats every
	// split because offload overhead dominates.
	m := quiet()
	cpuOnly, _ := m.HostTime(Assignment{SizeMB: 190, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
	for f := 10; f <= 90; f += 10 {
		hs := 190 * float64(f) / 100
		th, _ := m.HostTime(Assignment{SizeMB: hs, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
		td, _ := m.DeviceTime(Assignment{SizeMB: 190 - hs, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
		if math.Max(th, td) <= cpuOnly {
			t.Fatalf("split %d/%d (%g) should be slower than CPU-only (%g)", f, 100-f, math.Max(th, td), cpuOnly)
		}
	}
}

func TestPaperShapeLargeInputPrefersSplit(t *testing.T) {
	// Figure 2b: with 3250 MB and 48 host threads a 60/40-70/30 split wins.
	m := quiet()
	bestF, bestE := -1, math.Inf(1)
	for f := 0; f <= 100; f += 10 {
		hs := 3250 * float64(f) / 100
		th, _ := m.HostTime(Assignment{SizeMB: hs, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
		td, _ := m.DeviceTime(Assignment{SizeMB: 3250 - hs, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
		if e := math.Max(th, td); e < bestE {
			bestE, bestF = e, f
		}
	}
	if bestF < 50 || bestF > 80 {
		t.Fatalf("best split = %d/%d, want host share in [50, 80]", bestF, 100-bestF)
	}
}

func TestPaperShapeFewHostThreadsPrefersDevice(t *testing.T) {
	// Figure 2c: with only 4 host threads, most work should go to the
	// device.
	m := quiet()
	bestF, bestE := -1, math.Inf(1)
	for f := 0; f <= 100; f += 10 {
		hs := 3250 * float64(f) / 100
		th, _ := m.HostTime(Assignment{SizeMB: hs, Threads: 4, Affinity: machine.AffinityScatter}, human, 0)
		td, _ := m.DeviceTime(Assignment{SizeMB: 3250 - hs, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
		if e := math.Max(th, td); e < bestE {
			bestE, bestF = e, f
		}
	}
	if bestF > 40 {
		t.Fatalf("best host share = %d%%, want <= 40%% with 4 host threads", bestF)
	}
}

func TestPaperSpeedupBands(t *testing.T) {
	// Section IV-D: heterogeneous execution ~1.7x over host-only and ~2x
	// over device-only. Accept generous bands around those targets.
	m := quiet()
	hostOnly, _ := m.HostTime(Assignment{SizeMB: 3247, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
	devOnly, _ := m.DeviceTime(Assignment{SizeMB: 3247, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
	best := math.Inf(1)
	for f := 0.0; f <= 100; f += 2.5 {
		hs := 3247 * f / 100
		th, _ := m.HostTime(Assignment{SizeMB: hs, Threads: 48, Affinity: machine.AffinityScatter}, human, 0)
		td, _ := m.DeviceTime(Assignment{SizeMB: 3247 - hs, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
		if e := math.Max(th, td); e < best {
			best = e
		}
	}
	hostSpeedup := hostOnly / best
	devSpeedup := devOnly / best
	if hostSpeedup < 1.3 || hostSpeedup > 2.1 {
		t.Errorf("speedup vs host-only = %.2f, want within [1.3, 2.1] (paper: 1.68-1.95)", hostSpeedup)
	}
	if devSpeedup < 1.5 || devSpeedup > 2.6 {
		t.Errorf("speedup vs device-only = %.2f, want within [1.5, 2.6] (paper: 2.02-2.36)", devSpeedup)
	}
}

func TestComplexityScalesTime(t *testing.T) {
	m := quiet()
	a := Assignment{SizeMB: 1000, Threads: 24, Affinity: machine.AffinityScatter}
	t1, _ := m.HostTime(a, Traits{Name: "x", Complexity: 1}, 0)
	t2, _ := m.HostTime(a, Traits{Name: "x", Complexity: 1.1}, 0)
	if t2 <= t1 {
		t.Fatalf("higher complexity should be slower: %g vs %g", t1, t2)
	}
}

func TestZeroComplexityDefaultsToOne(t *testing.T) {
	m := quiet()
	a := Assignment{SizeMB: 1000, Threads: 24, Affinity: machine.AffinityScatter}
	t0, _ := m.HostTime(a, Traits{Name: "x"}, 0)
	t1, _ := m.HostTime(a, Traits{Name: "x", Complexity: 1}, 0)
	if t0 != t1 {
		t.Fatalf("zero complexity should equal 1.0: %g vs %g", t0, t1)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	m := NewPaperModel()
	a := Assignment{SizeMB: 1234, Threads: 24, Affinity: machine.AffinityScatter}
	x1, _ := m.HostTime(a, human, 3)
	x2, _ := m.HostTime(a, human, 3)
	if x1 != x2 {
		t.Fatalf("same trial must reproduce: %g vs %g", x1, x2)
	}
	x3, _ := m.HostTime(a, human, 4)
	if x1 == x3 {
		t.Fatal("different trials should (almost surely) differ")
	}
}

func TestNoiseDistinctAcrossConfigs(t *testing.T) {
	m := NewPaperModel()
	a := Assignment{SizeMB: 1234, Threads: 24, Affinity: machine.AffinityScatter}
	b := Assignment{SizeMB: 1234, Threads: 36, Affinity: machine.AffinityScatter}
	q := quiet()
	ta, _ := m.HostTime(a, human, 0)
	tb, _ := m.HostTime(b, human, 0)
	qa, _ := q.HostTime(a, human, 0)
	qb, _ := q.HostTime(b, human, 0)
	if ta/qa == tb/qb {
		t.Fatal("noise factors should differ across configurations")
	}
}

func TestNoiseBounded(t *testing.T) {
	m := NewPaperModel()
	q := quiet()
	for trial := 0; trial < 200; trial++ {
		a := Assignment{SizeMB: 500, Threads: 12, Affinity: machine.AffinityScatter}
		noisy, _ := m.HostTime(a, human, trial)
		clean, _ := q.HostTime(a, human, trial)
		ratio := noisy / clean
		lo := 1 - 3*m.Cal.NoiseStdHost
		hi := 1 + 3*m.Cal.NoiseStdHost
		if ratio < lo-1e-9 || ratio > hi+1e-9 {
			t.Fatalf("trial %d: noise ratio %g outside [%g, %g]", trial, ratio, lo, hi)
		}
	}
}

func TestDeviceTimeSpanWiderThanHost(t *testing.T) {
	// Section IV-B explains the device error histogram has a wider span
	// because device times span 0.9-42 s vs 0.74-5.5 s on the host. Check
	// our spans are ordered the same way.
	m := quiet()
	hostSlowest, _ := m.HostTime(Assignment{SizeMB: 3247, Threads: 2, Affinity: machine.AffinityScatter}, human, 0)
	devSlowest, _ := m.DeviceTime(Assignment{SizeMB: 3247, Threads: 2, Affinity: machine.AffinityScatter}, human, 0)
	if devSlowest <= hostSlowest {
		t.Fatalf("slowest device config (%g) should exceed slowest host config (%g)", devSlowest, hostSlowest)
	}
	if devSlowest < 20 || devSlowest > 60 {
		t.Errorf("device slowest = %.1fs, want order of the paper's 42 s", devSlowest)
	}
}

func TestBandwidthRooflineBinds(t *testing.T) {
	m := quiet()
	// Crank traffic per byte until the roofline must bind.
	m.Cal.BytesPerByte = 1000
	got, err := m.HostThroughputMBs(48, machine.AffinityScatter)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Host.MemBandwidthGBs * 1000 * m.Cal.BandwidthEfficiency / 1000
	if got != want {
		t.Fatalf("roofline throughput = %g, want %g", got, want)
	}
}

func TestOffloadLatencyAppliesOnlyWithWork(t *testing.T) {
	m := quiet()
	zero, _ := m.DeviceTime(Assignment{SizeMB: 0, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
	if zero != 0 {
		t.Fatalf("idle device should cost nothing, got %g", zero)
	}
	tiny, _ := m.DeviceTime(Assignment{SizeMB: 0.001, Threads: 240, Affinity: machine.AffinityBalanced}, human, 0)
	if tiny < m.Cal.OffloadLatencySec {
		t.Fatalf("any offload must pay the latency: %g < %g", tiny, m.Cal.OffloadLatencySec)
	}
}

// Property: host and device times are strictly positive, finite, and
// monotone in size for any valid configuration.
func TestTimePositivityProperty(t *testing.T) {
	m := quiet()
	hostThreads := []int{2, 4, 6, 12, 24, 36, 48}
	devThreads := []int{2, 4, 8, 16, 30, 60, 120, 180, 240}
	hostAff := []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact}
	devAff := []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact}
	f := func(sizeRaw uint16, ti, ai uint8) bool {
		size := float64(sizeRaw%4000) + 1
		th, err := m.HostTime(Assignment{SizeMB: size, Threads: hostThreads[int(ti)%len(hostThreads)], Affinity: hostAff[int(ai)%len(hostAff)]}, human, 0)
		if err != nil || th <= 0 || math.IsInf(th, 0) || math.IsNaN(th) {
			return false
		}
		td, err := m.DeviceTime(Assignment{SizeMB: size, Threads: devThreads[int(ti)%len(devThreads)], Affinity: devAff[int(ai)%len(devAff)]}, human, 0)
		if err != nil || td <= 0 || math.IsInf(td, 0) || math.IsNaN(td) {
			return false
		}
		th2, _ := m.HostTime(Assignment{SizeMB: size * 2, Threads: hostThreads[int(ti)%len(hostThreads)], Affinity: hostAff[int(ai)%len(hostAff)]}, human, 0)
		return th2 > th
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
