package perf

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"strings"
	"testing"

	"hetopt/internal/machine"
)

// stdlibMeasurementHash is the reference implementation of the
// measurement key hash, written against hash/fnv exactly as the hot path
// was before the FNV-1a inlining. measurementHash must stay bit-identical
// to it forever: the hash seeds the noise draws, so any divergence
// silently changes every simulated measurement.
func stdlibMeasurementHash(seed uint64, role, workload string, a Assignment, trial int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(seed)
	io.WriteString(h, role)
	h.Write([]byte{0})
	io.WriteString(h, workload)
	h.Write([]byte{0})
	put(uint64(int64(a.SizeMB * 1024)))
	put(uint64(int64(a.Threads)))
	put(uint64(int64(a.Affinity)))
	put(uint64(int64(trial)))
	return h.Sum64()
}

func TestMeasurementHashMatchesStdlibFNV(t *testing.T) {
	seeds := []uint64{0, 1, 42, 1<<63 - 1, ^uint64(0)}
	roles := []string{"", "host", "device", "r\x00le", "rôle→", strings.Repeat("h", 300)}
	workloads := []string{"", "dna-human", "matrix-mult\xff", strings.Repeat("w", 65)}
	assignments := []Assignment{
		{},
		{SizeMB: 0.5, Threads: 1, Affinity: machine.AffinityCompact},
		{SizeMB: 3246.25, Threads: 48, Affinity: machine.AffinityScatter},
		{SizeMB: 1e6, Threads: 240, Affinity: machine.AffinityBalanced},
		{SizeMB: -12, Threads: -1, Affinity: machine.AffinityNone},
	}
	trials := []int{-3, 0, 1, 7, 1 << 20}
	n := 0
	for _, seed := range seeds {
		for _, role := range roles {
			for _, w := range workloads {
				for _, a := range assignments {
					for _, trial := range trials {
						got := measurementHash(seed, role, w, a, trial)
						want := stdlibMeasurementHash(seed, role, w, a, trial)
						if got != want {
							t.Fatalf("measurementHash(%d, %q, %q, %+v, %d) = %#x, stdlib fnv = %#x",
								seed, role, w, a, trial, got, want)
						}
						n++
					}
				}
			}
		}
	}
	if n < 1000 {
		t.Fatalf("corpus too small: %d cases", n)
	}
}

// TestNoiseDrawZeroAllocs pins the full noise derivation — hash,
// splitmix decorrelation, Box-Muller — as allocation-free; it runs on
// every simulated measurement, four times per MeasureFull.
func TestNoiseDrawZeroAllocs(t *testing.T) {
	a := Assignment{SizeMB: 1623, Threads: 48, Affinity: machine.AffinityScatter}
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		sink += normalFromKey(42, "host", "dna-human", a, 3)
	})
	if allocs != 0 {
		t.Fatalf("normalFromKey allocates %g allocs/op, want 0", allocs)
	}
	_ = sink
}

// TestThroughputLookupZeroAllocs pins the steady-state table-lookup path
// of the analytic model as allocation-free once the per-(workload,
// platform) tables are built.
func TestThroughputLookupZeroAllocs(t *testing.T) {
	m := NewPaperModel()
	w := Traits{Name: "human", Complexity: 1}
	if _, err := m.HostThroughputFor(48, machine.AffinityScatter, w); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeviceThroughputFor(240, machine.AffinityBalanced, w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.HostThroughputFor(48, machine.AffinityScatter, w); err != nil {
			t.Fatal(err)
		}
		if _, err := m.DeviceThroughputFor(240, machine.AffinityBalanced, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("throughput lookup allocates %g allocs/op, want 0", allocs)
	}
}
