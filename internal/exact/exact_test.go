package exact

import (
	"math"
	"reflect"
	"testing"
)

// quadProblem is a separable toy problem with a known optimum and an
// admissible (in fact exact over free dimensions) lower bound:
// Energy = sum_i w[i]*(state[i]-target[i])^2 + base.
type quadProblem struct {
	levels []int
	target []int
	w      []float64
	base   float64
}

func (p *quadProblem) Dim() int         { return len(p.levels) }
func (p *quadProblem) Levels(i int) int { return p.levels[i] }
func (p *quadProblem) term(i, v int) float64 {
	d := float64(v - p.target[i])
	return p.w[i] * d * d
}
func (p *quadProblem) Energy(state []int) (float64, error) {
	e := p.base
	for i, v := range state {
		e += p.term(i, v)
	}
	return e, nil
}

// boundedQuad adds the admissible bound: fixed terms exactly, free
// terms at their per-dimension minimum (0 when the target is in range).
type boundedQuad struct{ *quadProblem }

func (p boundedQuad) LowerBound(prefix []int, fixed int) float64 {
	e := p.base
	for i := 0; i < fixed; i++ {
		e += p.term(i, prefix[i])
	}
	for i := fixed; i < len(p.levels); i++ {
		min := math.Inf(1)
		for v := 0; v < p.levels[i]; v++ {
			if t := p.term(i, v); t < min {
				min = t
			}
		}
		e += min
	}
	return e
}

func newQuad() *quadProblem {
	return &quadProblem{
		levels: []int{5, 3, 7, 4},
		target: []int{3, 1, 2, 0},
		w:      []float64{2, 5, 1, 3},
		base:   0.25,
	}
}

func spaceSize(p Problem) int {
	n := 1
	for i := 0; i < p.Dim(); i++ {
		n *= p.Levels(i)
	}
	return n
}

// bruteForce enumerates the whole space, breaking energy ties by the
// lowest ordinal — the reference the solver must match exactly.
func bruteForce(t *testing.T, p Problem) ([]int, float64) {
	t.Helper()
	dim := p.Dim()
	state := make([]int, dim)
	best := append([]int(nil), state...)
	bestE := math.Inf(1)
	var rec func(d int)
	rec = func(d int) {
		if d == dim {
			e, err := p.Energy(state)
			if err != nil {
				t.Fatal(err)
			}
			if e < bestE {
				bestE = e
				copy(best, state)
			}
			return
		}
		for v := 0; v < p.Levels(d); v++ {
			state[d] = v
			rec(d + 1)
		}
		state[d] = 0
	}
	rec(0)
	return best, bestE
}

func TestSolveMatchesBruteForce(t *testing.T) {
	p := boundedQuad{newQuad()}
	wantState, wantE := bruteForce(t, p)
	res, err := Solve(p, Options{Prove: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != wantE || !reflect.DeepEqual(res.Best, wantState) {
		t.Fatalf("Solve = %v (%g), brute force = %v (%g)", res.Best, res.BestEnergy, wantState, wantE)
	}
	c := res.Certificate
	if !c.Optimal || c.Gap != 0 || c.LowerBound != wantE {
		t.Fatalf("certificate not optimal: %+v", c)
	}
	size := spaceSize(p)
	if c.Explored+c.Pruned != size {
		t.Fatalf("Explored+Pruned = %d+%d, want space size %d", c.Explored, c.Pruned, size)
	}
	if c.Explored >= size {
		t.Fatalf("no pruning: explored %d of %d", c.Explored, size)
	}
	if c.Pruned == 0 {
		t.Fatal("expected pruned subtrees")
	}
}

func TestSolveUnboundedIsCertifiedExhaustive(t *testing.T) {
	p := newQuad() // no LowerBound method
	wantState, wantE := bruteForce(t, p)
	res, err := Solve(p, Options{Prove: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != wantE || !reflect.DeepEqual(res.Best, wantState) {
		t.Fatalf("Solve = %v (%g), brute force = %v (%g)", res.Best, res.BestEnergy, wantState, wantE)
	}
	c := res.Certificate
	if !c.Optimal || c.Pruned != 0 || c.Explored != spaceSize(p) {
		t.Fatalf("unbounded solve should exhaust without pruning: %+v", c)
	}
}

// TestTieBreakMatchesOrdinal pins the exhaustive-equivalent tie-break:
// among equal-energy optima the lowest state ordinal wins, regardless
// of the bound-driven visit order.
func TestTieBreakMatchesOrdinal(t *testing.T) {
	// Flat plateau: every state has the same energy.
	p := &quadProblem{levels: []int{3, 3, 3}, target: []int{0, 0, 0}, w: []float64{0, 0, 0}, base: 1}
	res, err := Solve(boundedQuad{p}, Options{Prove: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Best, []int{0, 0, 0}) {
		t.Fatalf("tie-break picked %v, want the lowest ordinal [0 0 0]", res.Best)
	}
	if !res.Certificate.Optimal {
		t.Fatalf("plateau not proven: %+v", res.Certificate)
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	p := boundedQuad{newQuad()}
	base, err := Solve(p, Options{Prove: true, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 8} {
		res, err := Solve(p, Options{Prove: true, PoolSize: 4, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("parallelism %d: result differs\n got %+v\nwant %+v", par, res, base)
		}
	}
}

func TestPoolDiversityInvariant(t *testing.T) {
	// A large base widens the relative gap window so the pool has real
	// candidates to filter for diversity.
	q := newQuad()
	q.base = 10
	p := boundedQuad{q}
	const minDiv = 3
	res, err := Solve(p, Options{Prove: true, PoolSize: 6, PoolGap: 0.9, MinDiversity: minDiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pool) < 2 {
		t.Fatalf("pool too small to test diversity: %d entries", len(res.Pool))
	}
	if !reflect.DeepEqual(res.Pool[0].State, res.Best) || res.Pool[0].Energy != res.BestEnergy {
		t.Fatalf("pool[0] = %+v, want the optimum %v (%g)", res.Pool[0], res.Best, res.BestEnergy)
	}
	thresh := res.BestEnergy + 0.9*math.Abs(res.BestEnergy)
	for i, a := range res.Pool {
		if a.Energy > thresh {
			t.Fatalf("pool[%d] energy %g above gap threshold %g", i, a.Energy, thresh)
		}
		if e, err := p.Energy(a.State); err != nil || e != a.Energy {
			t.Fatalf("pool[%d] energy mismatch: recorded %g, evaluated %g", i, a.Energy, e)
		}
		for j, b := range res.Pool[i+1:] {
			if d := l1(a.State, b.State); d < minDiv {
				t.Fatalf("pool[%d] and pool[%d] only L1=%d apart, want >= %d", i, i+1+j, d, minDiv)
			}
		}
	}
	for i := 1; i < len(res.Pool); i++ {
		if res.Pool[i].Energy < res.Pool[i-1].Energy {
			t.Fatalf("pool not sorted by energy: %g before %g", res.Pool[i-1].Energy, res.Pool[i].Energy)
		}
	}
}

// looseQuad derates the exact separable bound by a constant factor —
// still admissible (it only underestimates) and still monotone, but
// loose enough that budget-truncated runs report genuinely positive
// gaps instead of proving the optimum from the frontier bounds alone.
type looseQuad struct{ boundedQuad }

func (p looseQuad) LowerBound(prefix []int, fixed int) float64 {
	return 0.6 * p.boundedQuad.LowerBound(prefix, fixed)
}

// TestBudgetGapMonotonicity: growing the budget extends the same
// deterministic traversal, so the incumbent never worsens, the frontier
// bound never loosens, and the certified gap never grows.
func TestBudgetGapMonotonicity(t *testing.T) {
	// A larger space so small budgets genuinely truncate.
	p := looseQuad{boundedQuad{&quadProblem{
		levels: []int{6, 5, 7, 4, 5},
		target: []int{4, 2, 5, 1, 3},
		w:      []float64{2, 5, 1, 3, 4},
		// A base large relative to the per-step deviation cost, so the
		// derated frontier bounds genuinely undercut the incumbent.
		base: 10,
	}}}
	prevGap := math.Inf(1)
	prevE := math.Inf(1)
	prevLB := math.Inf(-1)
	positiveGapSeen := false
	for _, budget := range []int{1, 2, 5, 10, 25, 100, 100000} {
		res, err := Solve(p, Options{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		c := res.Certificate
		if !c.Optimal && c.Gap > 0 {
			positiveGapSeen = true
		}
		if res.BestEnergy > prevE {
			t.Fatalf("budget %d: incumbent worsened %g -> %g", budget, prevE, res.BestEnergy)
		}
		if c.LowerBound < prevLB {
			t.Fatalf("budget %d: lower bound loosened %g -> %g", budget, prevLB, c.LowerBound)
		}
		if c.Gap > prevGap {
			t.Fatalf("budget %d: gap grew %g -> %g", budget, prevGap, c.Gap)
		}
		if c.LowerBound > res.BestEnergy {
			t.Fatalf("budget %d: lower bound %g above incumbent %g", budget, c.LowerBound, res.BestEnergy)
		}
		prevGap, prevE, prevLB = c.Gap, res.BestEnergy, c.LowerBound
	}
	if !positiveGapSeen {
		t.Fatal("no budget produced a positive gap; the monotonicity sweep tested nothing")
	}
	// The generous budget must prove optimality with a zero gap.
	if prevGap != 0 {
		t.Fatalf("final gap %g, want proven 0", prevGap)
	}
}

func TestPruningSoundUnderPoolGap(t *testing.T) {
	p := boundedQuad{newQuad()}
	_, wantE := bruteForce(t, p)
	res, err := Solve(p, Options{Prove: true, PoolSize: 8, PoolGap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != wantE {
		t.Fatalf("pool-widened solve lost the optimum: %g, want %g", res.BestEnergy, wantE)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&quadProblem{}, Options{}); err == nil {
		t.Fatal("zero-dimension problem accepted")
	}
	if _, err := Solve(&quadProblem{levels: []int{3, 0}, target: []int{0, 0}, w: []float64{1, 1}}, Options{}); err == nil {
		t.Fatal("zero-level dimension accepted")
	}
}
