// Package exact is a deterministic branch-and-bound solver over integer
// index-vector product spaces — the ground-truth layer of the search
// stack. Where every strategy in internal/strategy is a heuristic, Solve
// returns a provable answer: a Certificate stating either that the best
// state found is the true optimum (the tree was exhausted) or how far it
// can possibly be from it (an admissible lower bound on everything left
// unexplored), plus a top-K pool of provably-good, mutually diverse
// alternate states in the Gurobi PoolSearchMode/PoolSolutions/PoolGap
// idiom.
//
// The tree fixes one dimension per level; a node at depth d is the set
// of all states agreeing with prefix[:d]. Problems that implement
// Bounded supply an admissible lower bound on the energy of any state
// below a node (internal/core derives one from the roofline performance
// model, internal/graph from DAG critical paths); subtrees whose bound
// already exceeds the incumbent are pruned without evaluation. Problems
// without bounds still solve — the search degenerates to a certified
// exhaustive enumeration.
//
// Determinism contract: for a fixed (Problem, Options) the result —
// including the Certificate's Explored/Pruned counts and the pool — is
// bit-identical at every Parallelism level. The tree is split at a fixed
// depth (a pure function of the space shape, never of Parallelism) into
// independent subtree roots; each root runs sequentially, seeded with
// the same greedy-dive incumbent, and root results merge in root order
// by (energy, state ordinal) — never by completion order.
package exact

import (
	"fmt"
	"math"
	"sort"

	"hetopt/internal/search"
)

// Problem is the minimal product-space minimization problem: a state is
// an index vector of length Dim with state[i] in [0, Levels(i)). Energy
// must be a pure function of the state and safe for concurrent use.
// strategy.Spaced satisfies it structurally.
type Problem interface {
	Dim() int
	Levels(i int) int
	Energy(state []int) (float64, error)
}

// Bounded is optionally implemented by problems that can bound partial
// assignments. LowerBound must return an admissible (never
// overestimating) lower bound on Energy over every state that agrees
// with prefix[:fixed]; entries at and beyond fixed are undefined and
// must not be read. Bounds must be monotone: fixing one more dimension
// never lowers the bound. LowerBound must be pure and safe for
// concurrent use.
type Bounded interface {
	Problem
	LowerBound(prefix []int, fixed int) float64
}

// Defaults for the pool knobs, mirroring the Gurobi solution-pool
// parameters the serving layer exposes.
const (
	// DefaultPoolGap keeps pool candidates within 10% of the incumbent
	// when PoolGap is left zero.
	DefaultPoolGap = 0.10
	// DefaultMinDiversity is the minimum pairwise L1 index distance
	// between kept pool entries when MinDiversity is left zero. 1 would
	// only mean "distinct"; 2 forces genuinely different assignments.
	DefaultMinDiversity = 2
	// MaxPoolSize bounds PoolSize for callers that validate external
	// input (the serving layer rejects larger requests).
	MaxPoolSize = 64
)

// rootTarget is the minimum number of independent subtree roots the
// tree is split into (capped by the space size). It is a constant so
// the split — and therefore every count in the Certificate — is a pure
// function of the space shape, not of Parallelism.
const rootTarget = 16

// Options configures a solve. The zero value proves optimality with no
// pool.
type Options struct {
	// Budget caps the number of energy evaluations each subtree root
	// spends; the certificate reports the true optimality gap when the
	// cap truncates the search. Zero or negative is unlimited.
	Budget int
	// Prove ignores Budget and runs every root to exhaustion.
	Prove bool
	// PoolSize, when positive, collects up to that many mutually
	// diverse states within PoolGap of the optimum (the best state is
	// always pool entry 0).
	PoolSize int
	// PoolGap is the relative gap defining "provably good": candidates
	// with energy <= best + PoolGap*|best| are pool-eligible, and
	// subtrees are only pruned against that widened threshold so
	// alternates survive. Zero selects DefaultPoolGap when PoolSize is
	// set; it is ignored otherwise.
	PoolGap float64
	// MinDiversity is the minimum pairwise L1 index distance between
	// kept pool entries. Zero selects DefaultMinDiversity.
	MinDiversity int
	// Parallelism caps the number of subtree roots solved concurrently.
	// The result is bit-identical at every level; zero or one runs
	// sequentially.
	Parallelism int
}

// Certificate is the provable part of a Result.
type Certificate struct {
	// Optimal reports that the tree was exhausted: BestEnergy is the
	// true minimum over the whole space (ties broken by lowest state
	// ordinal, matching exhaustive enumeration).
	Optimal bool
	// LowerBound is an admissible lower bound on the true optimum. It
	// equals BestEnergy when Optimal; when the budget truncated the
	// search it is min(BestEnergy, bounds of the unexplored frontier).
	LowerBound float64
	// Gap is the relative optimality gap (BestEnergy-LowerBound)/
	// |BestEnergy| — 0 when proven, +Inf when nothing is known about
	// the frontier (an unbounded problem truncated mid-search).
	Gap float64
	// Explored counts states whose energy was evaluated inside the
	// tree; Pruned counts states eliminated by admissible bounds
	// without evaluation. For a proven solve Explored+Pruned equals the
	// space size; Explored < size is the proof that pruning is real.
	Explored int
	Pruned   int
}

// PoolEntry is one member of the diverse solution pool.
type PoolEntry struct {
	// State is the index vector; Energy its evaluated energy.
	State  []int
	Energy float64
}

// Result is the outcome of a Solve.
type Result struct {
	// Best is the lowest-energy state found; BestEnergy its energy.
	Best       []int
	BestEnergy float64
	// Evaluations counts all energy evaluations, the initial greedy
	// dive included (Certificate.Explored counts tree states only).
	Evaluations int
	// Certificate is the optimality certificate of the run.
	Certificate Certificate
	// Pool is the diverse solution pool, sorted by (energy, ordinal),
	// empty unless Options.PoolSize was set.
	Pool []PoolEntry
}

// solver holds the per-solve immutable shape shared by all roots.
type solver struct {
	p      Problem
	b      Bounded // nil when p has no admissible bounds
	dim    int
	levels []int
	// suffix[i] is the number of states below a depth-i node
	// (prod levels[i:]); suffix[dim] = 1. The ordinal of a state is
	// sum state[i]*suffix[i+1], matching space.Space flattening.
	suffix  []int
	size    int
	opt     Options
	gap     float64 // effective pool gap (0 when no pool)
	minDiv  int
	poolCap int // per-root candidate buffer cap
	// dive incumbent shared read-only by every root.
	diveState []int
	diveE     float64
	diveOrd   int
}

// candidate is an internal pool candidate with its ordinal for
// deterministic ordering.
type candidate struct {
	e     float64
	ord   int
	state []int
}

// rootState is the mutable per-root search state.
type rootState struct {
	s       *solver
	prefix  []int
	scratch [][]childRef // per-depth child buffers
	bestE   float64
	bestOrd int
	best    []int
	evals   int
	pruned  int // states eliminated by bounds
	budget  int // remaining leaf evaluations; -1 = unlimited
	trunc   bool
	// frontier is the minimum bound over subtrees left unexplored by
	// budget truncation (+Inf when none).
	frontier float64
	pool     []candidate
}

type childRef struct {
	v     int
	bound float64
}

// Solve runs the branch-and-bound search.
func Solve(p Problem, opt Options) (Result, error) {
	s, err := newSolver(p, opt)
	if err != nil {
		return Result{}, err
	}
	if err := s.dive(); err != nil {
		return Result{}, err
	}

	// Split the tree at the smallest depth whose prefix count reaches
	// rootTarget (a pure function of the space shape).
	depth, roots := 0, 1
	target := rootTarget
	if s.size < target {
		target = s.size
	}
	for depth < s.dim && roots < target {
		roots *= s.levels[depth]
		depth++
	}

	outs := make([]*rootState, roots)
	ferr := search.ForEach(roots, opt.Parallelism, func(r int) error {
		rs := s.newRootState()
		// Decode root r into prefix[:depth], most-significant first.
		x := r
		for d := depth - 1; d >= 0; d-- {
			rs.prefix[d] = x % s.levels[d]
			x /= s.levels[d]
		}
		outs[r] = rs
		if depth == s.dim {
			// Degenerate split: each root is a single leaf.
			return s.visitLeaf(rs, s.rootBound(rs, depth))
		}
		return s.expand(rs, depth)
	})
	if ferr != nil {
		return Result{}, ferr
	}
	return s.merge(outs), nil
}

func newSolver(p Problem, opt Options) (*solver, error) {
	dim := p.Dim()
	if dim <= 0 {
		return nil, fmt.Errorf("exact: problem has no dimensions (Dim=%d)", dim)
	}
	levels := make([]int, dim)
	suffix := make([]int, dim+1)
	suffix[dim] = 1
	for i := dim - 1; i >= 0; i-- {
		n := p.Levels(i)
		if n <= 0 {
			return nil, fmt.Errorf("exact: dimension %d has no levels (%d)", i, n)
		}
		levels[i] = n
		if int64(suffix[i+1]) > math.MaxInt64/int64(n) {
			return nil, fmt.Errorf("exact: space size overflows")
		}
		suffix[i] = suffix[i+1] * n
	}
	s := &solver{p: p, dim: dim, levels: levels, suffix: suffix, size: suffix[0], opt: opt}
	if b, ok := p.(Bounded); ok {
		s.b = b
	}
	if opt.PoolSize > 0 {
		s.gap = opt.PoolGap
		if s.gap <= 0 {
			s.gap = DefaultPoolGap
		}
		s.minDiv = opt.MinDiversity
		if s.minDiv <= 0 {
			s.minDiv = DefaultMinDiversity
		}
		s.poolCap = 4 * opt.PoolSize
		if s.poolCap < 64 {
			s.poolCap = 64
		}
	}
	return s, nil
}

// dive establishes the shared initial incumbent: a single greedy descent
// taking the minimum-bound child at every level (ties to the lowest
// index; index 0 throughout when the problem is unbounded).
func (s *solver) dive() error {
	state := make([]int, s.dim)
	for d := 0; d < s.dim; d++ {
		bestV := 0
		if s.b != nil && s.levels[d] > 1 {
			bestBd := math.Inf(1)
			for v := 0; v < s.levels[d]; v++ {
				state[d] = v
				if bd := s.b.LowerBound(state, d+1); bd < bestBd {
					bestBd, bestV = bd, v
				}
			}
		}
		state[d] = bestV
	}
	e, err := s.p.Energy(state)
	if err != nil {
		return err
	}
	s.diveState = state
	s.diveE = sanitize(e)
	s.diveOrd = s.ordinal(state)
	return nil
}

func (s *solver) ordinal(state []int) int {
	ord := 0
	for i, v := range state {
		ord += v * s.suffix[i+1]
	}
	return ord
}

func (s *solver) newRootState() *rootState {
	rs := &rootState{
		s:        s,
		prefix:   make([]int, s.dim),
		scratch:  make([][]childRef, s.dim),
		bestE:    s.diveE,
		bestOrd:  s.diveOrd,
		best:     append([]int(nil), s.diveState...),
		frontier: math.Inf(1),
		budget:   -1,
	}
	for d := 0; d < s.dim; d++ {
		rs.scratch[d] = make([]childRef, 0, s.levels[d])
	}
	if !s.opt.Prove && s.opt.Budget > 0 {
		rs.budget = s.opt.Budget
	}
	return rs
}

// thresh is the pruning threshold: the incumbent, widened by the pool
// gap so provably-good alternates stay explorable. Pruning is strict
// (bound > thresh), so every state tying the optimum is still evaluated
// and the (energy, ordinal) winner matches exhaustive enumeration.
func (rs *rootState) thresh() float64 {
	if rs.s.gap <= 0 {
		return rs.bestE
	}
	return rs.bestE + rs.s.gap*math.Abs(rs.bestE)
}

// rootBound bounds the root's own subtree (used only for the degenerate
// single-leaf-root split).
func (s *solver) rootBound(rs *rootState, fixed int) float64 {
	if s.b == nil {
		return math.Inf(-1)
	}
	return s.b.LowerBound(rs.prefix, fixed)
}

// expand enumerates dimension `fixed` of the node prefix[:fixed],
// bounding every child, then visiting them in (bound, index) order so
// the most promising subtree tightens the incumbent first.
func (s *solver) expand(rs *rootState, fixed int) error {
	ch := rs.scratch[fixed][:0]
	for v := 0; v < s.levels[fixed]; v++ {
		bd := math.Inf(-1)
		if s.b != nil {
			rs.prefix[fixed] = v
			bd = s.b.LowerBound(rs.prefix, fixed+1)
			if math.IsNaN(bd) {
				bd = math.Inf(-1)
			}
		}
		ch = append(ch, childRef{v: v, bound: bd})
	}
	sort.Slice(ch, func(i, j int) bool {
		if ch[i].bound != ch[j].bound {
			return ch[i].bound < ch[j].bound
		}
		return ch[i].v < ch[j].v
	})
	below := s.suffix[fixed+1]
	for i := 0; i < len(ch); i++ {
		c := ch[i]
		if rs.trunc || rs.budget == 0 {
			// Out of budget: everything left becomes the unexplored
			// frontier, priced by its admissible bound.
			rs.trunc = true
			if c.bound < rs.frontier {
				rs.frontier = c.bound
			}
			continue
		}
		if c.bound > rs.thresh() {
			// Children are bound-sorted and the threshold only ever
			// tightens: every remaining sibling prunes too.
			rs.pruned += (len(ch) - i) * below
			break
		}
		rs.prefix[fixed] = c.v
		var err error
		if fixed+1 == s.dim {
			err = s.visitLeaf(rs, c.bound)
		} else {
			err = s.expand(rs, fixed+1)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// visitLeaf evaluates the complete state in prefix.
func (s *solver) visitLeaf(rs *rootState, bound float64) error {
	if rs.trunc || rs.budget == 0 {
		rs.trunc = true
		if bound < rs.frontier {
			rs.frontier = bound
		}
		return nil
	}
	if bound > rs.thresh() {
		rs.pruned++
		return nil
	}
	e, err := s.p.Energy(rs.prefix)
	if err != nil {
		return err
	}
	e = sanitize(e)
	rs.evals++
	if rs.budget > 0 {
		rs.budget--
	}
	ord := s.ordinal(rs.prefix)
	if e < rs.bestE || (e == rs.bestE && ord < rs.bestOrd) {
		rs.bestE, rs.bestOrd = e, ord
		rs.best = append(rs.best[:0], rs.prefix...)
	}
	if s.opt.PoolSize > 0 && e <= rs.thresh() {
		rs.addCandidate(e, ord)
	}
	return nil
}

func (rs *rootState) addCandidate(e float64, ord int) {
	rs.pool = append(rs.pool, candidate{e: e, ord: ord, state: append([]int(nil), rs.prefix...)})
	if len(rs.pool) > 2*rs.s.poolCap {
		sortCandidates(rs.pool)
		rs.pool = rs.pool[:rs.s.poolCap]
	}
}

func sortCandidates(cs []candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].e != cs[j].e {
			return cs[i].e < cs[j].e
		}
		return cs[i].ord < cs[j].ord
	})
}

// merge folds the per-root results, in root order, into the final
// Result with its certificate and diversity-filtered pool.
func (s *solver) merge(outs []*rootState) Result {
	res := Result{
		Best:        append([]int(nil), s.diveState...),
		BestEnergy:  s.diveE,
		Evaluations: 1, // the dive
	}
	bestOrd := s.diveOrd
	optimal := true
	frontier := math.Inf(1)
	var cands []candidate
	for _, rs := range outs {
		res.Evaluations += rs.evals
		res.Certificate.Explored += rs.evals
		res.Certificate.Pruned += rs.pruned
		if rs.trunc {
			optimal = false
			if rs.frontier < frontier {
				frontier = rs.frontier
			}
		}
		if rs.bestE < res.BestEnergy || (rs.bestE == res.BestEnergy && rs.bestOrd < bestOrd) {
			res.BestEnergy, bestOrd = rs.bestE, rs.bestOrd
			res.Best = append(res.Best[:0], rs.best...)
		}
		if s.opt.PoolSize > 0 {
			cands = append(cands, rs.pool...)
		}
	}
	res.Certificate.Optimal = optimal
	if optimal {
		res.Certificate.LowerBound = res.BestEnergy
		res.Certificate.Gap = 0
	} else {
		lb := res.BestEnergy
		if frontier < lb {
			lb = frontier
		}
		res.Certificate.LowerBound = lb
		res.Certificate.Gap = relativeGap(res.BestEnergy, lb)
	}
	if s.opt.PoolSize > 0 {
		res.Pool = s.selectPool(cands, res.BestEnergy)
	}
	return res
}

// relativeGap is the Gurobi-style MIP gap (best-bound)/|best|.
func relativeGap(best, lb float64) float64 {
	if lb >= best {
		return 0
	}
	if best == 0 {
		return math.Inf(1)
	}
	if math.IsInf(best, 1) {
		return math.Inf(1)
	}
	return (best - lb) / math.Abs(best)
}

// selectPool applies the final gap filter and the greedy diversity
// sweep: candidates in (energy, ordinal) order are kept only when at
// least MinDiversity away (L1 index distance) from everything already
// kept, so the pool spans genuinely different assignments.
func (s *solver) selectPool(cands []candidate, bestE float64) []PoolEntry {
	thresh := bestE + s.gap*math.Abs(bestE)
	sortCandidates(cands)
	pool := make([]PoolEntry, 0, s.opt.PoolSize)
	kept := make([][]int, 0, s.opt.PoolSize)
	for _, c := range cands {
		if len(pool) == s.opt.PoolSize {
			break
		}
		if c.e > thresh {
			break
		}
		diverse := true
		for _, k := range kept {
			if l1(c.state, k) < s.minDiv {
				diverse = false
				break
			}
		}
		if !diverse {
			continue
		}
		kept = append(kept, c.state)
		pool = append(pool, PoolEntry{State: c.state, Energy: c.e})
	}
	return pool
}

// l1 is the L1 distance between two index vectors.
func l1(a, b []int) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// sanitize maps NaN to +Inf so broken evaluations are never selected
// (mirroring the strategy layer's convention).
func sanitize(e float64) float64 {
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}
