package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadProblem is a separable quadratic bowl over a discrete grid with its
// minimum at a known point; SA should find it easily.
type quadProblem struct {
	levels int
	target []int
	evals  int
}

func (p *quadProblem) Dim() int { return len(p.target) }

func (p *quadProblem) Initial(dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(p.levels)
	}
}

func (p *quadProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	i := rng.Intn(len(dst))
	if dst[i] == 0 {
		dst[i] = 1
	} else if dst[i] == p.levels-1 {
		dst[i]--
	} else if rng.Intn(2) == 0 {
		dst[i]--
	} else {
		dst[i]++
	}
}

func (p *quadProblem) Energy(state []int) float64 {
	p.evals++
	e := 0.0
	for i, v := range state {
		d := float64(v - p.target[i])
		e += d * d
	}
	return e
}

// rugged is a deceptive landscape with many local minima; used to check
// uphill acceptance happens.
type rugged struct{ quadProblem }

func (p *rugged) Energy(state []int) float64 {
	e := p.quadProblem.Energy(state)
	return e + 5*math.Abs(math.Sin(float64(state[0])*2.1))
}

func TestCoolingRateFor(t *testing.T) {
	rate, err := CoolingRateFor(1000, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After exactly 1000 steps T should be ~1.
	temp := 10000.0
	for i := 0; i < 1000; i++ {
		temp *= 1 - rate
	}
	if temp < 0.99 || temp > 1.01 {
		t.Fatalf("temperature after 1000 steps = %g, want ~1", temp)
	}
}

func TestCoolingRateForErrors(t *testing.T) {
	if _, err := CoolingRateFor(0, 100, 1); err == nil {
		t.Error("zero iterations should fail")
	}
	if _, err := CoolingRateFor(10, 0, 1); err == nil {
		t.Error("zero initial temp should fail")
	}
	if _, err := CoolingRateFor(10, 100, 0); err == nil {
		t.Error("zero stop temp should fail")
	}
	if _, err := CoolingRateFor(10, 1, 100); err == nil {
		t.Error("stop >= initial should fail")
	}
}

func TestMinimizeFindsQuadraticMinimum(t *testing.T) {
	p := &quadProblem{levels: 20, target: []int{7, 13, 2}}
	res, err := Minimize(p, Options{MaxIters: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != 0 {
		t.Fatalf("best energy = %g at %v, want 0 at %v", res.BestEnergy, res.Best, p.target)
	}
}

func TestMinimizeIterationBudgetRespected(t *testing.T) {
	p := &quadProblem{levels: 10, target: []int{3, 3}}
	res, err := Minimize(p, Options{MaxIters: 250, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 250 {
		t.Fatalf("iterations = %d, want 250", res.Iterations)
	}
	// One initial evaluation plus one per iteration.
	if p.evals != 251 {
		t.Fatalf("energy evaluations = %d, want 251", p.evals)
	}
}

func TestMinimizeStopsAtStopTemp(t *testing.T) {
	p := &quadProblem{levels: 10, target: []int{3, 3}}
	res, err := Minimize(p, Options{InitialTemp: 100, CoolingRate: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTemp >= 1 {
		t.Fatalf("final temp = %g, want < 1 (the paper's stop criterion)", res.FinalTemp)
	}
	// ln(1/100)/ln(0.9) ~ 43.7 -> 44 iterations.
	if res.Iterations < 40 || res.Iterations > 50 {
		t.Fatalf("iterations = %d, want ~44", res.Iterations)
	}
}

func TestMinimizeDeterministicBySeed(t *testing.T) {
	mk := func() *quadProblem { return &quadProblem{levels: 30, target: []int{11, 22, 5, 17}} }
	r1, err := Minimize(mk(), Options{MaxIters: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(mk(), Options{MaxIters: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestEnergy != r2.BestEnergy || r1.Accepted != r2.Accepted {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	r3, err := Minimize(mk(), Options{MaxIters: 500, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accepted == r3.Accepted && r1.BestEnergy == r3.BestEnergy && equalInts(r1.Best, r3.Best) {
		t.Log("different seeds produced identical runs (possible but unlikely)")
	}
}

func TestMinimizeAcceptsWorseMovesAtHighTemp(t *testing.T) {
	p := &rugged{quadProblem{levels: 50, target: []int{25, 25}}}
	res, err := Minimize(p, Options{InitialTemp: 1000, MaxIters: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedWorse == 0 {
		t.Fatal("SA never accepted a worse solution; the acceptance function is broken")
	}
	if res.AcceptedWorse >= res.Accepted {
		t.Fatalf("worse acceptances (%d) should be a minority of %d", res.AcceptedWorse, res.Accepted)
	}
}

func TestMinimizeMoreIterationsNoWorse(t *testing.T) {
	// Monotonicity in expectation: a longer budget should not yield a
	// worse best on the same seed (best-so-far tracking guarantees it for
	// nested runs with identical prefixes).
	energies := []float64{}
	for _, iters := range []int{100, 500, 2500} {
		p := &rugged{quadProblem{levels: 64, target: []int{50, 9}}}
		res, err := Minimize(p, Options{MaxIters: iters, InitialTemp: 500, CoolingRate: 0.002, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, res.BestEnergy)
	}
	for i := 1; i < len(energies); i++ {
		if energies[i] > energies[i-1] {
			t.Fatalf("best energy worsened with more iterations: %v", energies)
		}
	}
}

func TestMinimizeOnStepObserves(t *testing.T) {
	p := &quadProblem{levels: 10, target: []int{5}}
	steps := 0
	lastBest := math.Inf(1)
	_, err := Minimize(p, Options{MaxIters: 100, Seed: 5, OnStep: func(s Step) {
		steps++
		if s.Best > lastBest+1e-12 {
			t.Fatalf("best energy increased at iter %d: %g -> %g", s.Iter, lastBest, s.Best)
		}
		lastBest = s.Best
	}})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 100 {
		t.Fatalf("OnStep called %d times, want 100", steps)
	}
}

func TestMinimizeNaNEnergyNeverAccepted(t *testing.T) {
	p := &nanProblem{}
	res, err := Minimize(p, Options{MaxIters: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.BestEnergy, 1) {
		// The initial state is also NaN -> +Inf, so best stays +Inf.
		t.Fatalf("best energy = %g, want +Inf", res.BestEnergy)
	}
}

type nanProblem struct{}

func (p *nanProblem) Dim() int                                { return 1 }
func (p *nanProblem) Initial(dst []int, rng *rand.Rand)       { dst[0] = 0 }
func (p *nanProblem) Neighbor(dst, src []int, rng *rand.Rand) { dst[0] = src[0] }
func (p *nanProblem) Energy(state []int) float64              { return math.NaN() }

func TestMinimizeOptionValidation(t *testing.T) {
	p := &quadProblem{levels: 4, target: []int{0}}
	if _, err := Minimize(p, Options{InitialTemp: -5}); err == nil {
		t.Error("negative initial temperature should fail")
	}
	if _, err := Minimize(p, Options{CoolingRate: 1.5}); err == nil {
		t.Error("cooling rate >= 1 should fail")
	}
	if _, err := Minimize(p, Options{CoolingRate: -0.1}); err == nil {
		t.Error("negative cooling rate should fail")
	}
	if _, err := Minimize(&zeroDim{}, Options{}); err == nil {
		t.Error("zero-dimensional problem should fail")
	}
}

type zeroDim struct{}

func (z *zeroDim) Dim() int                                { return 0 }
func (z *zeroDim) Initial(dst []int, rng *rand.Rand)       {}
func (z *zeroDim) Neighbor(dst, src []int, rng *rand.Rand) {}
func (z *zeroDim) Energy(state []int) float64              { return 0 }

// Property: the reported best energy is never above the energy of any
// state the observer saw, and the returned best state has the reported
// energy.
func TestBestIsTrulyBestProperty(t *testing.T) {
	f := func(seed int64, itersRaw uint8) bool {
		iters := int(itersRaw)%300 + 10
		p := &quadProblem{levels: 16, target: []int{9, 4}}
		minSeen := math.Inf(1)
		res, err := Minimize(p, Options{MaxIters: iters, Seed: seed, OnStep: func(s Step) {
			if s.Candidate < minSeen {
				minSeen = s.Candidate
			}
		}})
		if err != nil {
			return false
		}
		check := &quadProblem{levels: 16, target: []int{9, 4}}
		if res.BestEnergy > minSeen+1e-12 {
			return false
		}
		return check.Energy(res.Best) == res.BestEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
