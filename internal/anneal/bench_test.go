package anneal

import "testing"

func BenchmarkMinimize1000Iters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := &quadProblem{levels: 41, target: []int{20, 5, 33, 11, 40}}
		if _, err := Minimize(p, Options{MaxIters: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizePaperSchedule(b *testing.B) {
	// The paper's literal schedule: T0 = 10^4 cooled by 0.003 until T<1.
	for i := 0; i < b.N; i++ {
		p := &quadProblem{levels: 41, target: []int{20, 5, 33, 11, 40}}
		if _, err := Minimize(p, Options{InitialTemp: 10000, CoolingRate: 0.003, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
