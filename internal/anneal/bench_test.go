package anneal

import (
	"fmt"
	"testing"
)

func BenchmarkMinimize1000Iters(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &quadProblem{levels: 41, target: []int{20, 5, 33, 11, 40}}
		if _, err := Minimize(p, Options{MaxIters: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimizeMultiChains runs 8 chains of 1000 iterations at
// increasing parallelism; the result is identical at every level, only
// wall-clock changes.
func BenchmarkMinimizeMultiChains(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := MinimizeMulti(func(int) Problem {
					return &quadProblem{levels: 41, target: []int{20, 5, 33, 11, 40}}
				}, MultiOptions{
					Options:     Options{MaxIters: 1000, Seed: int64(i)},
					Chains:      8,
					Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMinimizePaperSchedule(b *testing.B) {
	b.ReportAllocs()
	// The paper's literal schedule: T0 = 10^4 cooled by 0.003 until T<1.
	for i := 0; i < b.N; i++ {
		p := &quadProblem{levels: 41, target: []int{20, 5, 33, 11, 40}}
		if _, err := Minimize(p, Options{InitialTemp: 10000, CoolingRate: 0.003, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
