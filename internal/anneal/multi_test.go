package anneal

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestMinimizeMultiSingleChainMatchesMinimize(t *testing.T) {
	opt := Options{InitialTemp: 50, StopTemp: 0.01, MaxIters: 400, Seed: 9}
	single, err := Minimize(&quadProblem{levels: 12, target: []int{3, 7, 1}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MinimizeMulti(func(int) Problem {
		return &quadProblem{levels: 12, target: []int{3, 7, 1}}
	}, MultiOptions{Options: opt, Chains: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, multi.Result) {
		t.Fatalf("K=1 diverged from Minimize:\nsingle %+v\nmulti  %+v", single, multi.Result)
	}
	if multi.Chain != 0 || len(multi.PerChain) != 1 {
		t.Fatalf("chain bookkeeping = %d/%d", multi.Chain, len(multi.PerChain))
	}
}

func TestMinimizeMultiDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) MultiResult {
		res, err := MinimizeMulti(func(int) Problem {
			return &rugged{quadProblem{levels: 16, target: []int{5, 2, 9, 11}}}
		}, MultiOptions{
			Options:     Options{InitialTemp: 100, StopTemp: 0.01, MaxIters: 300, Seed: 4},
			Chains:      6,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, p := range []int{4, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
		}
	}
}

func TestMinimizeMultiPicksBestChain(t *testing.T) {
	res, err := MinimizeMulti(func(int) Problem {
		return &rugged{quadProblem{levels: 16, target: []int{5, 2, 9, 11}}}
	}, MultiOptions{
		Options: Options{InitialTemp: 100, StopTemp: 0.01, MaxIters: 200, Seed: 11},
		Chains:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerChain) != 5 {
		t.Fatalf("got %d chain results, want 5", len(res.PerChain))
	}
	for i, c := range res.PerChain {
		if c.BestEnergy < res.BestEnergy {
			t.Fatalf("chain %d energy %g beats winner %g", i, c.BestEnergy, res.BestEnergy)
		}
	}
	if res.PerChain[res.Chain].BestEnergy != res.BestEnergy {
		t.Fatal("winner's energy does not match its chain result")
	}
	if res.TotalIterations() != 5*200 {
		t.Fatalf("total iterations = %d, want %d", res.TotalIterations(), 5*200)
	}
}

func TestMinimizeMultiChainsImproveOnRugged(t *testing.T) {
	// On a deceptive landscape more chains can only help: the winner is a
	// min over a superset of the single-chain outcome.
	single, err := MinimizeMulti(func(int) Problem {
		return &rugged{quadProblem{levels: 16, target: []int{5, 2, 9, 11}}}
	}, MultiOptions{Options: Options{InitialTemp: 100, StopTemp: 0.01, MaxIters: 150, Seed: 3}, Chains: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := MinimizeMulti(func(int) Problem {
		return &rugged{quadProblem{levels: 16, target: []int{5, 2, 9, 11}}}
	}, MultiOptions{Options: Options{InitialTemp: 100, StopTemp: 0.01, MaxIters: 150, Seed: 3}, Chains: 8})
	if err != nil {
		t.Fatal(err)
	}
	if many.BestEnergy > single.BestEnergy {
		t.Fatalf("8 chains (%g) worse than chain 0 alone (%g)", many.BestEnergy, single.BestEnergy)
	}
}

func TestChainSeedDerivation(t *testing.T) {
	if ChainSeed(123, 0) != 123 {
		t.Fatal("chain 0 must use the base seed")
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := ChainSeed(123, i)
		if seen[s] {
			t.Fatalf("duplicate chain seed at chain %d", i)
		}
		seen[s] = true
	}
	if ChainSeed(123, 1) == ChainSeed(124, 1) {
		t.Fatal("different base seeds must derive different chain seeds")
	}
}

func TestMinimizeMultiOnStepOnlyChainZero(t *testing.T) {
	var steps int
	opt := Options{InitialTemp: 50, StopTemp: 0.01, MaxIters: 100, Seed: 2,
		OnStep: func(Step) { steps++ }}
	_, err := MinimizeMulti(func(int) Problem {
		return &quadProblem{levels: 8, target: []int{1, 2}}
	}, MultiOptions{Options: opt, Chains: 4})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 100 {
		t.Fatalf("observer saw %d steps, want 100 (chain 0 only)", steps)
	}
}

func TestMinimizeMultiPropagatesChainError(t *testing.T) {
	_, err := MinimizeMulti(func(chain int) Problem {
		if chain == 2 {
			return nil
		}
		return &quadProblem{levels: 8, target: []int{1, 2}}
	}, MultiOptions{Options: Options{MaxIters: 10, InitialTemp: 10, StopTemp: 1}, Chains: 4})
	if err == nil {
		t.Fatal("nil problem should fail")
	}
	if want := fmt.Sprintf("chain %d", 2); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name chain 2", err)
	}
}
