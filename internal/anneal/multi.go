package anneal

import (
	"fmt"
	"sync"

	"hetopt/internal/search"
)

// MultiOptions configures a MinimizeMulti run.
type MultiOptions struct {
	// Options configures each chain. Seed is the base seed: chain i runs
	// with ChainSeed(Seed, i), so chain 0 reproduces a plain Minimize run
	// with the same options. OnStep, when set, observes chain 0 only.
	Options
	// Chains is the number of independent annealing chains K. Zero or one
	// selects a single chain, reproducing Minimize exactly.
	Chains int
	// Parallelism caps the number of chains annealing concurrently. Zero
	// or one runs chains sequentially. The outcome is identical at any
	// parallelism level: chains are independent and the winner is chosen
	// by (energy, chain index), never by completion order.
	Parallelism int
}

func (o MultiOptions) chains() int {
	if o.Chains <= 1 {
		return 1
	}
	return o.Chains
}

// MultiResult is the outcome of a MinimizeMulti run.
type MultiResult struct {
	// Result is the winning chain's result (lowest best energy, ties
	// broken by lowest chain index).
	Result
	// Chain is the index of the winning chain.
	Chain int
	// PerChain holds every chain's result, indexed by chain.
	PerChain []Result
}

// TotalIterations sums the candidate evaluations across all chains.
func (r MultiResult) TotalIterations() int {
	total := 0
	for _, c := range r.PerChain {
		total += c.Iterations
	}
	return total
}

// ChainSeed derives the seed of chain i from the base seed. Chain 0 uses
// the base seed unchanged (so K=1 reduces to Minimize); later chains get
// decorrelated streams via a SplitMix64 finalizer. It is search.ChainSeed,
// re-exported here because the multi-chain annealer introduced the
// seeding contract the whole strategy layer now follows.
func ChainSeed(base int64, chain int) int64 {
	return search.ChainSeed(base, chain)
}

// MinimizeMulti runs K independent annealing chains and returns the best
// outcome. newProblem(i) supplies the problem instance for chain i; it is
// called once per chain on the calling goroutine before any chain starts,
// so implementations carrying per-run state (evaluation counters, sticky
// errors) can hand out one instance per chain while sharing read-only or
// concurrency-safe parts (e.g. a shared evaluation cache).
//
// For a fixed (Options, Chains) the returned result is bit-identical at
// every Parallelism level: chain seeds derive only from the base seed and
// the chain index, and best-of selection orders by (energy, chain index).
func MinimizeMulti(newProblem func(chain int) Problem, opt MultiOptions) (MultiResult, error) {
	chains := opt.chains()
	if newProblem == nil {
		return MultiResult{}, fmt.Errorf("anneal: nil problem factory")
	}
	problems := make([]Problem, chains)
	for i := range problems {
		if problems[i] = newProblem(i); problems[i] == nil {
			return MultiResult{}, fmt.Errorf("anneal: nil problem for chain %d", i)
		}
	}

	results := make([]Result, chains)
	errs := make([]error, chains)
	runChain := func(i int) {
		chainOpt := opt.Options
		chainOpt.Seed = ChainSeed(opt.Seed, i)
		if i != 0 {
			chainOpt.OnStep = nil
		}
		results[i], errs[i] = Minimize(problems[i], chainOpt)
	}

	workers := opt.Parallelism
	if workers > chains {
		workers = chains
	}
	if workers <= 1 {
		for i := 0; i < chains; i++ {
			runChain(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					runChain(i)
				}
			}()
		}
		for i := 0; i < chains; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return MultiResult{}, fmt.Errorf("anneal: chain %d: %w", i, err)
		}
	}
	out := MultiResult{Result: results[0], Chain: 0, PerChain: results}
	for i := 1; i < chains; i++ {
		if results[i].BestEnergy < out.BestEnergy {
			out.Result = results[i]
			out.Chain = i
		}
	}
	return out, nil
}
