// Package anneal implements the simulated annealing metaheuristic exactly
// as the paper describes it (Section III-A and Figure 3):
//
//   - the annealing schedule is T = T * (1 - coolingRate) (Equation 3);
//   - a proposed solution with energy E' is accepted unconditionally when
//     E' < E, and otherwise with probability p = exp((E - E') / T)
//     (Equation 4);
//   - the loop stops when T drops below the stop temperature ("T < 1" in
//     Figure 3) or when an explicit iteration budget is exhausted;
//   - the best solution seen so far is tracked alongside the current one
//     ("update current and best solution").
//
// The problem is abstracted over integer index vectors, matching the
// discrete configuration space of internal/space.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Problem defines the optimization problem: a discrete state space with a
// neighborhood structure and an energy (objective) function to minimize.
type Problem interface {
	// Dim returns the length of a state vector.
	Dim() int
	// Initial writes a starting state into dst.
	Initial(dst []int, rng *rand.Rand)
	// Neighbor writes into dst a neighbor of src; dst and src may alias.
	Neighbor(dst, src []int, rng *rand.Rand)
	// Energy evaluates a state. Lower is better. NaN energies are treated
	// as +Inf (never accepted).
	Energy(state []int) float64
}

// Options configures a Minimize run.
type Options struct {
	// InitialTemp is the starting temperature. Zero selects
	// DefaultInitialTemp.
	InitialTemp float64
	// CoolingRate is the paper's coolingRate in T = T*(1-coolingRate).
	// Zero selects the rate that reaches StopTemp after MaxIters
	// iterations (or DefaultCoolingRate if MaxIters is also zero).
	CoolingRate float64
	// StopTemp stops the annealing once T < StopTemp; the paper uses 1.
	// Zero selects 1.
	StopTemp float64
	// MaxIters, when positive, caps the number of iterations regardless
	// of temperature.
	MaxIters int
	// Seed drives all stochastic choices; runs are reproducible.
	Seed int64
	// OnStep, when non-nil, observes every iteration.
	OnStep func(Step)
}

// Defaults used when Options fields are zero.
const (
	DefaultInitialTemp = 10000.0
	DefaultCoolingRate = 0.003
)

// Step describes one annealing iteration for observers.
type Step struct {
	// Iter counts iterations from 0.
	Iter int
	// Temp is the temperature when the step was evaluated.
	Temp float64
	// Candidate is the proposed energy E'; Current and Best are the
	// energies after the acceptance decision.
	Candidate, Current, Best float64
	// Accepted reports whether the candidate replaced the current
	// solution; Worse additionally reports that it was an uphill
	// (worse-energy) acceptance.
	Accepted, Worse bool
}

// Result is the outcome of a Minimize run.
type Result struct {
	// Best is the lowest-energy state seen; BestEnergy its energy.
	Best       []int
	BestEnergy float64
	// Iterations is the number of candidate evaluations performed (the
	// initial solution's evaluation is not counted).
	Iterations int
	// Accepted counts accepted moves; AcceptedWorse the uphill subset.
	Accepted, AcceptedWorse int
	// FinalTemp is the temperature when the run stopped.
	FinalTemp float64
}

// CoolingRateFor returns the cooling rate at which the schedule
// T = T*(1-rate) decays from initialTemp to stopTemp in exactly iters
// iterations. It returns an error for non-positive arguments or
// stopTemp >= initialTemp.
func CoolingRateFor(iters int, initialTemp, stopTemp float64) (float64, error) {
	if iters <= 0 {
		return 0, fmt.Errorf("anneal: iteration count must be positive, got %d", iters)
	}
	if initialTemp <= 0 || stopTemp <= 0 {
		return 0, fmt.Errorf("anneal: temperatures must be positive (initial %g, stop %g)", initialTemp, stopTemp)
	}
	if stopTemp >= initialTemp {
		return 0, fmt.Errorf("anneal: stop temperature %g must be below initial %g", stopTemp, initialTemp)
	}
	return 1 - math.Pow(stopTemp/initialTemp, 1/float64(iters)), nil
}

// Minimize runs simulated annealing and returns the best state found.
func Minimize(p Problem, opt Options) (Result, error) {
	if p.Dim() <= 0 {
		return Result{}, fmt.Errorf("anneal: problem dimension must be positive")
	}
	t0 := opt.InitialTemp
	if t0 == 0 {
		t0 = DefaultInitialTemp
	}
	if t0 < 0 {
		return Result{}, fmt.Errorf("anneal: negative initial temperature %g", t0)
	}
	stop := opt.StopTemp
	if stop == 0 {
		stop = 1
	}
	rate := opt.CoolingRate
	if rate == 0 {
		if opt.MaxIters > 0 {
			var err error
			rate, err = CoolingRateFor(opt.MaxIters, t0, stop)
			if err != nil {
				return Result{}, err
			}
		} else {
			rate = DefaultCoolingRate
		}
	}
	if rate <= 0 || rate >= 1 {
		return Result{}, fmt.Errorf("anneal: cooling rate %g outside (0,1)", rate)
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	cur := make([]int, p.Dim())
	p.Initial(cur, rng)
	curE := sanitize(p.Energy(cur))

	best := append([]int(nil), cur...)
	bestE := curE

	cand := make([]int, p.Dim())
	res := Result{}
	temp := t0
	for iter := 0; temp >= stop; iter++ {
		if opt.MaxIters > 0 && iter >= opt.MaxIters {
			break
		}
		p.Neighbor(cand, cur, rng)
		candE := sanitize(p.Energy(cand))

		accepted := false
		worse := false
		if candE < curE {
			accepted = true
		} else if temp > 0 && !math.IsInf(candE, 1) {
			// Equation 4: p = exp((E - E')/T).
			if math.Exp((curE-candE)/temp) > rng.Float64() {
				accepted = true
				worse = candE > curE
			}
		}
		if accepted {
			copy(cur, cand)
			curE = candE
			res.Accepted++
			if worse {
				res.AcceptedWorse++
			}
			if curE < bestE {
				bestE = curE
				copy(best, cur)
			}
		}
		res.Iterations++
		if opt.OnStep != nil {
			opt.OnStep(Step{
				Iter:      iter,
				Temp:      temp,
				Candidate: candE,
				Current:   curE,
				Best:      bestE,
				Accepted:  accepted,
				Worse:     worse,
			})
		}
		temp *= 1 - rate // Equation 3.
	}
	res.Best = best
	res.BestEnergy = bestE
	res.FinalTemp = temp
	return res, nil
}

// sanitize maps NaN to +Inf so broken evaluations are never accepted.
func sanitize(e float64) float64 {
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}
