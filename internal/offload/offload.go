// Package offload is the heterogeneous offload runtime of the
// reproduction: it takes a system configuration (space.Config), splits a
// divisible workload between the host CPUs and the accelerator according
// to the configured fraction, and reports per-side execution times with
// the paper's objective E = max(T_host, T_device) (Equation 2) together
// with per-side energy from the calibrated power model (MeasureFull). The
// offloaded share runs concurrently with the host share, mirroring the
// paper's use of the Intel offload programming model with overlapped
// host/device execution.
//
// Two paths are provided:
//
//   - Measure: the "testbed" path. Execution time comes from the
//     calibrated perf.Model (see DESIGN.md on hardware substitution), so
//     paper-scale multi-gigabyte runs are evaluated in microseconds.
//
//   - Execute: the real-computation path. The DNA matching engine
//     (internal/parem) actually processes the input bytes for both
//     shares — the device share on a simulated executor that runs the
//     identical code on local CPU threads — and the report combines real
//     match counts with modeled times.
package offload

import (
	"fmt"
	"math"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/parem"
	"hetopt/internal/perf"
	"hetopt/internal/space"
)

// Times holds the per-side execution times of one run, in seconds.
type Times struct {
	Host, Device float64
}

// E is the paper's objective function (Equation 2):
// E = max(T_host, T_device).
func (t Times) E() float64 {
	return math.Max(t.Host, t.Device)
}

// Energy holds the per-side energy consumption of one run, in joules.
// A side that received no work is disengaged and consumes nothing; an
// engaged side draws static power for the whole run (it cannot sleep
// while the other side still computes) plus dynamic power while busy.
type Energy struct {
	Host, Device float64
}

// Total is the energy objective: joules consumed across all engaged
// processing units.
func (e Energy) Total() float64 {
	return e.Host + e.Device
}

// Measurement is the complete outcome of evaluating one configuration:
// per-side times and per-side energy, composed from a single experiment
// so that caching by configuration remains exact for every objective.
type Measurement struct {
	Times  Times
	Energy Energy
}

// E is the time objective, max(T_host, T_device).
func (m Measurement) E() float64 { return m.Times.E() }

// Joules is the energy objective, the total across engaged units.
func (m Measurement) Joules() float64 { return m.Energy.Total() }

// Workload identifies a divisible input. The fields beyond Name, SizeMB
// and Complexity are the scenario layer's workload-family traits; their
// zero values reproduce the paper's DNA workload behaviour exactly.
type Workload struct {
	// Name keys measurement noise and reports.
	Name string
	// SizeMB is the total input size in megabytes.
	SizeMB float64
	// Complexity is the matching-cost multiplier (1.0 = human genome).
	Complexity float64
	// BytesPerByte, when positive, is the workload's memory traffic per
	// input byte (overrides the platform calibration's default of 1.0) —
	// the arithmetic-intensity knob of scenario workload families.
	BytesPerByte float64
	// HostRateFactor and DeviceRateFactor, when positive, scale the
	// per-core streaming rates relative to the reference workload (1.0),
	// modeling how well the kernel maps onto each side.
	HostRateFactor, DeviceRateFactor float64
}

// GenomeWorkload converts a dna.Genome into a Workload.
func GenomeWorkload(g dna.Genome) Workload {
	return Workload{Name: g.Name, SizeMB: g.SizeMB, Complexity: g.Complexity}
}

// Scaled returns a copy of the workload with the size replaced; used to
// evaluate motivational scenarios such as the paper's 190 MB experiment.
func (w Workload) Scaled(sizeMB float64) Workload {
	w.SizeMB = sizeMB
	return w
}

// Traits converts the workload to the perf model's view; consumers that
// price throughput directly (e.g. the dynamic-scheduling baseline) must
// pass it so workload families keep their compute/bandwidth signature.
func (w Workload) Traits() perf.Traits {
	return perf.Traits{
		Name:             w.Name,
		Complexity:       w.Complexity,
		BytesPerByte:     w.BytesPerByte,
		HostRateFactor:   w.HostRateFactor,
		DeviceRateFactor: w.DeviceRateFactor,
	}
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("offload: workload needs a name")
	}
	if w.SizeMB <= 0 {
		return fmt.Errorf("offload: workload %q size %g must be positive", w.Name, w.SizeMB)
	}
	return nil
}

// Platform couples the host/device performance model with validation
// logic. The zero value is not usable; construct with NewPlatform.
type Platform struct {
	model *perf.Model
}

// NewPlatform returns the paper's platform (2x Xeon E5 + Xeon Phi 7120P)
// with default calibration.
func NewPlatform() *Platform {
	return &Platform{model: perf.NewPaperModel()}
}

// NewPlatformWithModel wraps a custom performance model (used by tests and
// by the custom-machine example).
func NewPlatformWithModel(m *perf.Model) *Platform {
	return &Platform{model: m}
}

// Model exposes the underlying performance model (calibration knobs).
func (p *Platform) Model() *perf.Model { return p.model }

// Host and Device expose the processor descriptions.
func (p *Platform) Host() *machine.Processor   { return p.model.Host }
func (p *Platform) Device() *machine.Processor { return p.model.Device }

// split returns the host and device share sizes in MB.
func split(w Workload, cfg space.Config) (hostMB, devMB float64, err error) {
	if cfg.HostFraction < 0 || cfg.HostFraction > 100 {
		return 0, 0, fmt.Errorf("offload: host fraction %g outside [0,100]", cfg.HostFraction)
	}
	hostMB = w.SizeMB * cfg.HostFraction / 100
	devMB = w.SizeMB - hostMB
	return hostMB, devMB, nil
}

// Measure returns the modeled execution times of running workload w under
// configuration cfg. trial selects the measurement-noise draw; repeated
// measurements with equal trial reproduce identical values (a stable
// testbed), different trials model re-runs.
func (p *Platform) Measure(w Workload, cfg space.Config, trial int) (Times, error) {
	m, err := p.MeasureFull(w, cfg, trial)
	return m.Times, err
}

// MeasureFull is Measure extended with the energy dimension: one
// experiment yields both the per-side times and the per-side energy, so
// every objective can be scored from a single cached evaluation. Energy
// accounting: each engaged unit draws its active power while its share
// runs and its static power while it waits for the other side to finish
// (the makespan); a unit with no work consumes nothing.
func (p *Platform) MeasureFull(w Workload, cfg space.Config, trial int) (Measurement, error) {
	if err := w.Validate(); err != nil {
		return Measurement{}, err
	}
	hostMB, devMB, err := split(w, cfg)
	if err != nil {
		return Measurement{}, err
	}
	hostA := perf.Assignment{SizeMB: hostMB, Threads: cfg.HostThreads, Affinity: cfg.HostAffinity}
	devA := perf.Assignment{SizeMB: devMB, Threads: cfg.DeviceThreads, Affinity: cfg.DeviceAffinity}
	var m Measurement
	if hostMB > 0 {
		m.Times.Host, err = p.model.HostTime(hostA, w.Traits(), trial)
		if err != nil {
			return Measurement{}, err
		}
	}
	if devMB > 0 {
		m.Times.Device, err = p.model.DeviceTime(devA, w.Traits(), trial)
		if err != nil {
			return Measurement{}, err
		}
	}
	makespan := m.Times.E()
	m.Energy.Host, err = p.model.HostEnergy(hostA, w.Traits(), trial, m.Times.Host, makespan)
	if err != nil {
		return Measurement{}, err
	}
	m.Energy.Device, err = p.model.DeviceEnergy(devA, w.Traits(), trial, m.Times.Device, makespan)
	if err != nil {
		return Measurement{}, err
	}
	return m, nil
}

// ExecutionReport combines real matching results with modeled times.
type ExecutionReport struct {
	// Times are the modeled execution times for the actual input size.
	Times Times
	// HostMatches and DeviceMatches are the real match counts of each
	// share; Matches is their sum.
	HostMatches, DeviceMatches, Matches uint64
	// HostBytes and DeviceBytes record the byte split.
	HostBytes, DeviceBytes int64
	// HostRun and DeviceRun describe the parallel-matching execution.
	HostRun, DeviceRun parem.Result
}

// Execute really runs the matching engine over total bytes from src,
// split according to cfg: the host share on cfg.HostThreads workers and
// the device share on a device-simulating executor with
// cfg.DeviceThreads workers. Reported times come from the performance
// model applied to the actual share sizes; match counts are real and
// chunking-independent.
func (p *Platform) Execute(w Workload, cfg space.Config, d *automata.DFA, src parem.Source, total int64, trial int) (ExecutionReport, error) {
	if err := w.Validate(); err != nil {
		return ExecutionReport{}, err
	}
	if total < 0 {
		return ExecutionReport{}, fmt.Errorf("offload: negative input size %d", total)
	}
	if total == 0 {
		return ExecutionReport{}, nil // nothing to do: empty report
	}
	hostBytes := int64(float64(total) * cfg.HostFraction / 100)
	if cfg.HostFraction < 0 || cfg.HostFraction > 100 {
		return ExecutionReport{}, fmt.Errorf("offload: host fraction %g outside [0,100]", cfg.HostFraction)
	}
	devBytes := total - hostBytes

	report := ExecutionReport{HostBytes: hostBytes, DeviceBytes: devBytes}

	// Model the times for the actual byte sizes.
	times, err := p.Measure(w.Scaled(float64(total)/(1<<20)), cfg, trial)
	if err != nil {
		return ExecutionReport{}, err
	}
	report.Times = times

	// Real matching. The "device" executor runs the same engine: the
	// substitution for unavailable Xeon Phi hardware (DESIGN.md). The
	// device share resumes from the host share's final automaton state so
	// matches straddling the distribution boundary are counted exactly
	// once; the total therefore equals a sequential pass over the whole
	// input.
	boundary := d.Start
	if hostBytes > 0 {
		res, err := parem.CountSource(d, src, hostBytes, parem.Options{Workers: cfg.HostThreads})
		if err != nil {
			return ExecutionReport{}, fmt.Errorf("offload: host share: %w", err)
		}
		report.HostRun = res
		report.HostMatches = res.Matches
		boundary = res.Final
	}
	if devBytes > 0 {
		res, err := parem.CountSource(d, parem.Section(src, hostBytes), devBytes, parem.Options{
			Workers:    cfg.DeviceThreads,
			StartState: &boundary,
		})
		if err != nil {
			return ExecutionReport{}, fmt.Errorf("offload: device share: %w", err)
		}
		report.DeviceRun = res
		report.DeviceMatches = res.Matches
	}
	report.Matches = report.HostMatches + report.DeviceMatches
	return report, nil
}
