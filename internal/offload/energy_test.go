package offload

import (
	"testing"

	"hetopt/internal/machine"
	"hetopt/internal/space"
)

func TestEnergyTotal(t *testing.T) {
	if got := (Energy{Host: 10, Device: 5}).Total(); got != 15 {
		t.Errorf("total = %g, want 15", got)
	}
	m := Measurement{Times: Times{Host: 2, Device: 3}, Energy: Energy{Host: 10, Device: 5}}
	if m.E() != 3 || m.Joules() != 15 {
		t.Errorf("measurement accessors = %g/%g, want 3/15", m.E(), m.Joules())
	}
}

func TestMeasureFullComposesTimesAndEnergy(t *testing.T) {
	p := NewPlatform()
	w := Workload{Name: "human", SizeMB: 2000}
	cfg := space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	}
	full, err := p.MeasureFull(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The times side must be identical to the times-only path: one
	// evaluation serves both objectives.
	times, err := p.Measure(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Times != times {
		t.Fatalf("MeasureFull times %+v differ from Measure %+v", full.Times, times)
	}
	if full.Energy.Host <= 0 || full.Energy.Device <= 0 {
		t.Fatalf("both engaged sides must consume energy, got %+v", full.Energy)
	}
	// Determinism: equal trial reproduces the identical measurement.
	again, err := p.MeasureFull(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatal("repeated measurement with equal trial diverged")
	}
	other, err := p.MeasureFull(w, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if other == full {
		t.Fatal("different trials should observe different noise")
	}
}

func TestMeasureFullDisengagedSides(t *testing.T) {
	p := NewPlatform()
	w := Workload{Name: "human", SizeMB: 2000}
	hostOnly := space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 100,
	}
	m, err := p.MeasureFull(w, hostOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy.Device != 0 {
		t.Errorf("device received no work but consumed %g J", m.Energy.Device)
	}
	if m.Energy.Host <= 0 {
		t.Error("host-only run must consume host energy")
	}
	devOnly := hostOnly
	devOnly.HostFraction = 0
	m, err = p.MeasureFull(w, devOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy.Host != 0 {
		t.Errorf("host received no work but consumed %g J", m.Energy.Host)
	}
	if m.Energy.Device <= 0 {
		t.Error("device-only run must consume device energy")
	}
}

// TestEngagedIdleEnergy checks the accounting of waiting: an unbalanced
// split keeps the faster side engaged (drawing static power) until the
// slower side finishes, so its energy must exceed active-only pricing.
func TestEngagedIdleEnergy(t *testing.T) {
	p := NewPlatform()
	w := Workload{Name: "human", SizeMB: 3000}
	// 10/90: the device dominates the makespan, the host idles engaged.
	cfg := space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 10,
	}
	m, err := p.MeasureFull(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Times.Device <= m.Times.Host {
		t.Skip("unexpected balance; idle-accounting scenario not reached")
	}
	activeOnly, err := p.Model().HostActivePowerW(cfg.HostThreads, cfg.HostAffinity)
	if err != nil {
		t.Fatal(err)
	}
	// Host energy must exceed what its busy period alone can explain
	// (noise is a few percent; the idle tail is a large multiple here).
	if m.Energy.Host <= activeOnly*m.Times.Host*1.1 {
		t.Errorf("host energy %g J does not account for engaged idling (busy share %g J)",
			m.Energy.Host, activeOnly*m.Times.Host)
	}
}
