package offload

import (
	"math"
	"testing"
	"testing/quick"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/space"
)

func quietPlatform() *Platform {
	p := NewPlatform()
	p.Model().Cal.NoiseStdHost = 0
	p.Model().Cal.NoiseStdDevice = 0
	return p
}

func balancedConfig(fraction float64) space.Config {
	return space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: fraction,
	}
}

func TestTimesE(t *testing.T) {
	if got := (Times{Host: 2, Device: 3}).E(); got != 3 {
		t.Fatalf("E = %g, want 3 (Equation 2)", got)
	}
	if got := (Times{Host: 5, Device: 3}).E(); got != 5 {
		t.Fatalf("E = %g, want 5", got)
	}
}

func TestGenomeWorkload(t *testing.T) {
	w := GenomeWorkload(dna.Human)
	if w.Name != "human" || w.SizeMB != dna.Human.SizeMB || w.Complexity != 1 {
		t.Fatalf("workload = %+v", w)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{Name: "", SizeMB: 1}).Validate(); err == nil {
		t.Error("empty name should fail")
	}
	if err := (Workload{Name: "x", SizeMB: 0}).Validate(); err == nil {
		t.Error("zero size should fail")
	}
}

func TestWorkloadScaled(t *testing.T) {
	w := GenomeWorkload(dna.Human).Scaled(190)
	if w.SizeMB != 190 || w.Name != "human" {
		t.Fatalf("scaled workload = %+v", w)
	}
}

func TestMeasureSplitsWork(t *testing.T) {
	p := quietPlatform()
	w := GenomeWorkload(dna.Human)
	full, err := p.Measure(w, balancedConfig(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Device != 0 {
		t.Fatalf("CPU-only run should have zero device time, got %g", full.Device)
	}
	devOnly, err := p.Measure(w, balancedConfig(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if devOnly.Host != 0 {
		t.Fatalf("device-only run should have zero host time, got %g", devOnly.Host)
	}
	split, err := p.Measure(w, balancedConfig(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	if split.Host <= 0 || split.Device <= 0 {
		t.Fatalf("split run times = %+v", split)
	}
	if split.Host >= full.Host {
		t.Fatalf("60%% host share (%g) should beat 100%% (%g)", split.Host, full.Host)
	}
}

func TestMeasureRejectsBadFraction(t *testing.T) {
	p := quietPlatform()
	w := GenomeWorkload(dna.Human)
	for _, f := range []float64{-1, 101} {
		if _, err := p.Measure(w, balancedConfig(f), 0); err == nil {
			t.Errorf("fraction %g should fail", f)
		}
	}
}

func TestMeasureRejectsBadConfig(t *testing.T) {
	p := quietPlatform()
	w := GenomeWorkload(dna.Human)
	cfg := balancedConfig(50)
	cfg.HostAffinity = machine.AffinityBalanced // invalid on host
	if _, err := p.Measure(w, cfg, 0); err == nil {
		t.Error("invalid host affinity should fail")
	}
	cfg = balancedConfig(50)
	cfg.DeviceThreads = 0
	if _, err := p.Measure(w, cfg, 0); err == nil {
		t.Error("zero device threads with device work should fail")
	}
}

func TestMeasureObjectiveShape(t *testing.T) {
	// The heterogeneous optimum must beat both host-only and device-only
	// for a paper-scale workload (Section IV-D).
	p := quietPlatform()
	w := GenomeWorkload(dna.Human)
	hostOnly, _ := p.Measure(w, balancedConfig(100), 0)
	devOnly, _ := p.Measure(w, balancedConfig(0), 0)
	best := math.Inf(1)
	for f := 2.5; f < 100; f += 2.5 {
		ti, err := p.Measure(w, balancedConfig(f), 0)
		if err != nil {
			t.Fatal(err)
		}
		if ti.E() < best {
			best = ti.E()
		}
	}
	if best >= hostOnly.E() || best >= devOnly.E() {
		t.Fatalf("best split %g should beat host-only %g and device-only %g", best, hostOnly.E(), devOnly.E())
	}
}

func TestMeasureTrialNoise(t *testing.T) {
	p := NewPlatform() // noise enabled
	w := GenomeWorkload(dna.Cat)
	a, err := p.Measure(w, balancedConfig(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Measure(w, balancedConfig(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same trial must reproduce the same measurement")
	}
	c, err := p.Measure(w, balancedConfig(60), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different trials should differ")
	}
}

func TestExecuteCountsMatchSequential(t *testing.T) {
	p := quietPlatform()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dna.NewGenerator(dna.Human, 5).WithPlantedMotif("GAATTC", 300)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(1 << 20)
	text := gen.Generate(int(total))
	want := d.CountMatches(text)

	for _, fraction := range []float64{0, 2.5, 37.5, 60, 100} {
		rep, err := p.Execute(GenomeWorkload(dna.Human), balancedConfig(fraction), d, gen, total, 0)
		if err != nil {
			t.Fatalf("fraction %g: %v", fraction, err)
		}
		if rep.Matches != want {
			t.Fatalf("fraction %g: matches = %d, want %d (boundary handling broken)", fraction, rep.Matches, want)
		}
		if rep.HostBytes+rep.DeviceBytes != total {
			t.Fatalf("fraction %g: byte split %d+%d != %d", fraction, rep.HostBytes, rep.DeviceBytes, total)
		}
		if rep.Times.E() <= 0 {
			t.Fatalf("fraction %g: non-positive modeled time", fraction)
		}
	}
}

func TestExecuteValidation(t *testing.T) {
	p := quietPlatform()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen := dna.NewGenerator(dna.Human, 5)
	if _, err := p.Execute(Workload{}, balancedConfig(50), d, gen, 100, 0); err == nil {
		t.Error("invalid workload should fail")
	}
	if _, err := p.Execute(GenomeWorkload(dna.Human), balancedConfig(50), d, gen, -1, 0); err == nil {
		t.Error("negative total should fail")
	}
	if _, err := p.Execute(GenomeWorkload(dna.Human), balancedConfig(200), d, gen, 100, 0); err == nil {
		t.Error("bad fraction should fail")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := NewPlatform()
	if p.Host().TotalThreads() != 48 || p.Device().TotalThreads() != 240 {
		t.Fatalf("platform processors wrong: %s / %s", p.Host().Name, p.Device().Name)
	}
	if p.Model() == nil {
		t.Fatal("model accessor returned nil")
	}
}

// Property: Execute conserves matches for any fraction on the grid.
func TestExecuteConservationProperty(t *testing.T) {
	p := quietPlatform()
	d, err := automata.CompileMotifs([]dna.Motif{{Name: "tata", Pattern: "TATAAA"}, {Name: "ecoRI", Pattern: "GAATTC"}})
	if err != nil {
		t.Fatal(err)
	}
	gen := dna.NewGenerator(dna.Dog, 23)
	total := int64(1 << 17)
	want := d.CountMatches(gen.Generate(int(total)))
	f := func(fRaw uint8, hostW, devW uint8) bool {
		fraction := float64(fRaw%41) * 2.5
		cfg := balancedConfig(fraction)
		cfg.HostThreads = []int{2, 6, 12, 24, 36, 48}[hostW%6]
		cfg.DeviceThreads = []int{2, 4, 8, 16, 30, 60, 120, 180, 240}[devW%9]
		rep, err := p.Execute(GenomeWorkload(dna.Dog), cfg, d, gen, total, 0)
		if err != nil {
			return false
		}
		return rep.Matches == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteUnboundedContextDFA(t *testing.T) {
	// A repetition pattern has no bounded context: the engine must fall
	// back to the enumerative strategy on both shares and still conserve
	// matches across the distribution boundary.
	p := quietPlatform()
	d, err := automata.CompilePattern("GA(AT)+TC")
	if err != nil {
		t.Fatal(err)
	}
	if d.ContextLen != 0 {
		t.Fatalf("pattern should be unbounded, ContextLen=%d", d.ContextLen)
	}
	gen := dna.NewGenerator(dna.Mouse, 77)
	total := int64(1 << 20)
	want := d.CountMatches(gen.Generate(int(total)))
	rep, err := p.Execute(GenomeWorkload(dna.Mouse), balancedConfig(50), d, gen, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != want {
		t.Fatalf("unbounded-context split counted %d, sequential %d", rep.Matches, want)
	}
}

func TestExecuteZeroTotal(t *testing.T) {
	p := quietPlatform()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen := dna.NewGenerator(dna.Human, 1)
	rep, err := p.Execute(GenomeWorkload(dna.Human), balancedConfig(60), d, gen, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 0 || rep.HostBytes != 0 || rep.DeviceBytes != 0 {
		t.Fatalf("zero-length execution produced %+v", rep)
	}
}

func TestMeasureScaledWorkloadKeepsIdentity(t *testing.T) {
	// Scaling a workload must keep its name (noise identity) while
	// changing only the size.
	p := quietPlatform()
	w := GenomeWorkload(dna.Cat).Scaled(123)
	ti, err := p.Measure(w, balancedConfig(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	w2 := Workload{Name: "cat", SizeMB: 123, Complexity: dna.Cat.Complexity}
	ti2, err := p.Measure(w2, balancedConfig(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ti != ti2 {
		t.Fatalf("scaled workload measured differently: %+v vs %+v", ti, ti2)
	}
}
