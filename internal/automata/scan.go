package automata

import (
	"fmt"

	"hetopt/internal/dna"
)

// Match is one match event: the end position of an occurrence in the
// scanned text and the number of motifs ending there.
type Match struct {
	// End is the byte offset just past the last matched byte.
	End int64
	// Count is the match multiplicity at this position.
	Count uint32
}

// Scan streams text through the automaton and invokes fn for every
// position where at least one match ends. Returning false from fn stops
// the scan early. Scan returns the final automaton state, so consecutive
// sections can be chained exactly like CountFrom.
func (d *DFA) Scan(state int32, base int64, text []byte, fn func(Match) bool) int32 {
	next := d.Next
	start := d.Start
	for i, b := range text {
		code, ok := dna.EncodeByte(b)
		if !ok {
			state = start
			continue
		}
		state = next[state][code]
		if out := d.Out[state]; out > 0 {
			if !fn(Match{End: base + int64(i) + 1, Count: out}) {
				return state
			}
		}
	}
	return state
}

// FindAll returns every match event in text, up to limit events (limit
// <= 0 means unbounded). The automaton starts in its start state.
func (d *DFA) FindAll(text []byte, limit int) []Match {
	var out []Match
	d.Scan(d.Start, 0, text, func(m Match) bool {
		out = append(out, m)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// CompileMotifsBothStrands builds an Aho-Corasick automaton matching each
// motif on both DNA strands: the motif itself and its reverse complement.
// Palindromic motifs (reverse complement equal to the motif, like EcoRI's
// GAATTC) are added once, so a palindromic site is counted once per
// position rather than twice.
func CompileMotifsBothStrands(motifs []dna.Motif) (*DFA, error) {
	var expanded []dna.Motif
	for _, m := range motifs {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		expanded = append(expanded, m)
		rc, err := dna.ReverseComplementPattern(m.Pattern)
		if err != nil {
			return nil, fmt.Errorf("automata: motif %q: %w", m.Name, err)
		}
		if rc == m.Pattern {
			continue // palindrome: one strand's automaton already covers both
		}
		expanded = append(expanded, dna.Motif{Name: m.Name + "(rc)", Pattern: rc})
	}
	return CompileMotifs(expanded)
}
