package automata

import (
	"fmt"
	"strings"

	"hetopt/internal/dna"
)

// DFA is a deterministic finite automaton with a dense transition table
// over the 4-symbol base alphabet, the representation the matching engine
// streams through. The same type backs both determinized regex NFAs and
// Aho-Corasick automata.
type DFA struct {
	// Next holds the complete transition function: Next[s][b] is the
	// successor of state s on base code b.
	Next [][dna.AlphabetSize]int32
	// Out[s] is the match multiplicity of state s: how many matches end
	// when the automaton enters s. Determinized regexes use 0/1 (some
	// match ends here); Aho-Corasick uses the number of patterns ending
	// here.
	Out []uint32
	// Start is the initial state.
	Start int32
	// ContextLen, when positive, asserts that the automaton's state after
	// reading any text depends only on the last ContextLen symbols. This
	// holds for Aho-Corasick (bounded by the longest pattern) and for
	// determinized patterns without unbounded repetition; it enables the
	// exact warm-up parallel matching strategy. Zero means unknown or
	// unbounded.
	ContextLen int
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Next) }

// Validate checks structural invariants: a complete transition table with
// in-range targets and a valid start state.
func (d *DFA) Validate() error {
	n := int32(d.NumStates())
	if n == 0 {
		return fmt.Errorf("automata: DFA has no states")
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("automata: DFA start state %d out of range [0,%d)", d.Start, n)
	}
	if len(d.Out) != int(n) {
		return fmt.Errorf("automata: DFA has %d states but %d output entries", n, len(d.Out))
	}
	for s, row := range d.Next {
		for b, t := range row {
			if t < 0 || t >= n {
				return fmt.Errorf("automata: transition (%d, %d) -> %d out of range", s, b, t)
			}
		}
	}
	return nil
}

// Step advances one encoded symbol.
func (d *DFA) Step(state int32, sym uint8) int32 {
	return d.Next[state][sym]
}

// StepByte advances one raw input byte. Bytes outside ACGT reset the
// automaton to its start state (treating N runs and separators as match
// breakers).
func (d *DFA) StepByte(state int32, b byte) int32 {
	code, ok := dna.EncodeByte(b)
	if !ok {
		return d.Start
	}
	return d.Next[state][code]
}

// CountMatches streams text through the automaton from the start state and
// returns the total match multiplicity (sum of Out over every position).
func (d *DFA) CountMatches(text []byte) uint64 {
	count, _ := d.CountFrom(d.Start, text)
	return count
}

// CountFrom streams text from an explicit state and returns the total
// multiplicity together with the final state. It is the primitive the
// parallel matching strategies build on.
func (d *DFA) CountFrom(state int32, text []byte) (uint64, int32) {
	var count uint64
	next := d.Next
	start := d.Start
	for _, b := range text {
		code, ok := dna.EncodeByte(b)
		if !ok {
			state = start
			continue
		}
		state = next[state][code]
		count += uint64(d.Out[state])
	}
	return count, state
}

// FinalState streams text from state and returns only the resulting state
// (no counting); used by warm-up phases.
func (d *DFA) FinalState(state int32, text []byte) int32 {
	next := d.Next
	start := d.Start
	for _, b := range text {
		code, ok := dna.EncodeByte(b)
		if !ok {
			state = start
			continue
		}
		state = next[state][code]
	}
	return state
}

// String renders a compact human-readable table for debugging.
func (d *DFA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DFA(%d states, start %d, ctx %d)\n", d.NumStates(), d.Start, d.ContextLen)
	for s, row := range d.Next {
		fmt.Fprintf(&sb, "  %3d out=%d:", s, d.Out[s])
		for b, t := range row {
			fmt.Fprintf(&sb, " %c->%d", dna.Letters[b], t)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CompilePattern compiles a motif pattern into a search DFA: the pattern
// is matched unanchored (at any position), determinized, and minimized.
// Patterns without unbounded repetition get an exact ContextLen, enabling
// warm-up parallel matching.
func CompilePattern(pattern string) (*DFA, error) {
	nfa, err := CompileNFA(pattern, true)
	if err != nil {
		return nil, err
	}
	d := Determinize(nfa)
	d = Minimize(d)
	if ml := nfa.MaxMatchLen(); ml > 0 {
		d.ContextLen = ml
	}
	return d, nil
}

// Determinize applies the subset construction to an NFA, producing a
// complete DFA whose Out marks accepting subsets with multiplicity 1.
func Determinize(n *NFA) *DFA {
	visited := make([]bool, n.NumStates())
	startSet := n.epsClosure([]int32{n.Start}, visited)

	type pending struct {
		id  int32
		set []int32
	}
	ids := map[string]int32{}
	key := func(set []int32) string {
		var sb strings.Builder
		for _, s := range set {
			fmt.Fprintf(&sb, "%d,", s)
		}
		return sb.String()
	}

	d := &DFA{}
	addState := func(set []int32) int32 {
		id := int32(len(d.Next))
		d.Next = append(d.Next, [dna.AlphabetSize]int32{})
		out := uint32(0)
		for _, s := range set {
			if s == n.Accept {
				out = 1
				break
			}
		}
		d.Out = append(d.Out, out)
		ids[key(set)] = id
		return id
	}

	work := []pending{{addState(startSet), startSet}}
	d.Start = 0
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for sym := uint8(0); sym < dna.AlphabetSize; sym++ {
			moved := n.move(cur.set, sym)
			closed := n.epsClosure(moved, visited)
			k := key(closed)
			id, ok := ids[k]
			if !ok {
				id = addState(closed)
				work = append(work, pending{id, closed})
			}
			d.Next[cur.id][sym] = id
		}
	}
	return d
}
