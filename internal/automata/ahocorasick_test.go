package automata

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetopt/internal/dna"
)

func motifs(patterns ...string) []dna.Motif {
	out := make([]dna.Motif, len(patterns))
	for i, p := range patterns {
		out[i] = dna.Motif{Name: p, Pattern: p}
	}
	return out
}

func TestExpandMotifConcrete(t *testing.T) {
	exp, err := expandMotif("ACG")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 1 || len(exp[0]) != 3 {
		t.Fatalf("unexpected expansion %v", exp)
	}
}

func TestExpandMotifIUPAC(t *testing.T) {
	exp, err := expandMotif("RY") // {A,G} x {C,T}
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 4 {
		t.Fatalf("RY should expand to 4 strings, got %d", len(exp))
	}
	seen := map[string]bool{}
	for _, p := range exp {
		s := ""
		for _, b := range p {
			s += string(dna.Letters[b])
		}
		seen[s] = true
	}
	for _, want := range []string{"AC", "AT", "GC", "GT"} {
		if !seen[want] {
			t.Errorf("missing expansion %s (have %v)", want, seen)
		}
	}
}

func TestExpandMotifGuard(t *testing.T) {
	if _, err := expandMotif(strings.Repeat("N", 8)); err == nil {
		t.Fatal("4^8 expansion should exceed the guard")
	}
	if _, err := expandMotif(""); err == nil {
		t.Fatal("empty motif should fail")
	}
	if _, err := expandMotif("AXC"); err == nil {
		t.Fatal("non-IUPAC byte should fail")
	}
}

func TestCompileMotifsErrors(t *testing.T) {
	if _, err := CompileMotifs(nil); err == nil {
		t.Fatal("empty motif set should fail")
	}
	if _, err := CompileMotifs([]dna.Motif{{Name: "bad", Pattern: ""}}); err == nil {
		t.Fatal("empty pattern should fail")
	}
}

func TestAhoCorasickBasicCounts(t *testing.T) {
	d, err := CompileMotifs(motifs("ACG", "GT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// ACGT: ACG ends at 2, GT ends at 3.
	if got := d.CountMatches([]byte("ACGT")); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestAhoCorasickOverlapAndSuffix(t *testing.T) {
	// Patterns where one is a suffix of another: both must count.
	d, err := CompileMotifs(motifs("AACG", "ACG", "CG"))
	if err != nil {
		t.Fatal(err)
	}
	// AACG ends: AACG(1) + ACG(1) + CG(1) = 3.
	if got := d.CountMatches([]byte("AACG")); got != 3 {
		t.Fatalf("suffix-chain count = %d, want 3", got)
	}
}

func TestAhoCorasickDuplicatesCount(t *testing.T) {
	d, err := CompileMotifs(motifs("ACG", "ACG"))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("ACG")); got != 2 {
		t.Fatalf("duplicate pattern count = %d, want 2", got)
	}
}

func TestAhoCorasickContextLen(t *testing.T) {
	d, err := CompileMotifs(motifs("ACGT", "GCCGCCATGG"))
	if err != nil {
		t.Fatal(err)
	}
	if d.ContextLen != 10 {
		t.Fatalf("ContextLen = %d, want 10", d.ContextLen)
	}
}

func TestAhoCorasickMatchesNaiveOnDefaults(t *testing.T) {
	set := dna.DefaultMotifs()
	d, err := CompileMotifs(set)
	if err != nil {
		t.Fatal(err)
	}
	gen := dna.NewGenerator(dna.Human, 42)
	gen, err = gen.WithPlantedMotif("GAATTC", 512)
	if err != nil {
		t.Fatal(err)
	}
	text := gen.Generate(1 << 15)
	want, err := NaiveMotifCount(set, text)
	if err != nil {
		t.Fatal(err)
	}
	got := d.CountMatches(text)
	if got != want {
		t.Fatalf("AC count = %d, naive = %d", got, want)
	}
	planted := uint64(gen.PlantedCount(1 << 15))
	if got < planted {
		t.Fatalf("count %d below planted lower bound %d", got, planted)
	}
}

func TestAhoCorasickSeparators(t *testing.T) {
	d, err := CompileMotifs(motifs("ACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("ACNGT")); got != 0 {
		t.Fatalf("separator should break matches, got %d", got)
	}
	if got := d.CountMatches([]byte("ACGT\nACGT")); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestNaiveMotifCountSeparators(t *testing.T) {
	got, err := NaiveMotifCount(motifs("ACGT"), []byte("ACNGT"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("naive separator count = %d, want 0", got)
	}
}

// Property: Aho-Corasick equals brute force on random motif sets and
// random texts.
func TestAhoCorasickNaiveEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nPat, textLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numPatterns := int(nPat)%4 + 1
		set := make([]dna.Motif, numPatterns)
		for i := range set {
			l := rng.Intn(5) + 1
			var sb strings.Builder
			for j := 0; j < l; j++ {
				sb.WriteByte(dna.Letters[rng.Intn(4)])
			}
			set[i] = dna.Motif{Name: "p", Pattern: sb.String()}
		}
		text := randomDNA(rng, int(textLen))
		d, err := CompileMotifs(set)
		if err != nil {
			return false
		}
		want, err := NaiveMotifCount(set, text)
		if err != nil {
			return false
		}
		return d.CountMatches(text) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-motif AC agrees with the regex pipeline on end-position
// counting (a single concrete pattern has multiplicity 0/1 everywhere, so
// the two semantics coincide).
func TestAhoCorasickRegexAgreementProperty(t *testing.T) {
	f := func(seed int64, patLen, textLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(patLen)%6 + 1
		var sb strings.Builder
		for j := 0; j < l; j++ {
			sb.WriteByte(dna.Letters[rng.Intn(4)])
		}
		pattern := sb.String()
		text := randomDNA(rng, int(textLen))
		ac, err := CompileMotifs(motifs(pattern))
		if err != nil {
			return false
		}
		re, err := CompilePattern(pattern)
		if err != nil {
			return false
		}
		return ac.CountMatches(text) == re.CountMatches(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeAhoCorasick(t *testing.T) {
	// Minimizing the AC automaton must preserve counts.
	d, err := CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	m := Minimize(d)
	if m.NumStates() > d.NumStates() {
		t.Fatalf("minimize grew automaton: %d -> %d", d.NumStates(), m.NumStates())
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		text := randomDNA(rng, 2000)
		if a, b := d.CountMatches(text), m.CountMatches(text); a != b {
			t.Fatalf("counts diverge: %d vs %d", a, b)
		}
	}
}
