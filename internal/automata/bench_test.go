package automata

import (
	"testing"

	"hetopt/internal/dna"
)

func benchText(n int) []byte {
	return dna.NewGenerator(dna.Human, 1).Generate(n)
}

func BenchmarkCompileMotifs(b *testing.B) {
	b.ReportAllocs()
	set := dna.DefaultMotifs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileMotifs(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileMotifsBothStrands(b *testing.B) {
	b.ReportAllocs()
	set := dna.DefaultMotifs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileMotifsBothStrands(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompilePattern(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompilePattern("GCC(A|G)CCATGG"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterminizeMinimize(b *testing.B) {
	b.ReportAllocs()
	nfa, err := CompileNFA("GCCRCC(A|T)TGG", true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d := Determinize(nfa)
		Minimize(d)
	}
}

func BenchmarkCountMatches(b *testing.B) {
	b.ReportAllocs()
	d, err := CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		b.Fatal(err)
	}
	text := benchText(1 << 20)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CountMatches(text)
	}
}

func BenchmarkScanWithMatches(b *testing.B) {
	b.ReportAllocs()
	d, err := CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		b.Fatal(err)
	}
	text := benchText(1 << 20)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		events = 0
		d.Scan(d.Start, 0, text, func(Match) bool { events++; return true })
	}
	b.ReportMetric(float64(events), "matches")
}

func BenchmarkNaiveMotifCount(b *testing.B) {
	b.ReportAllocs()
	set := dna.DefaultMotifs()
	text := benchText(1 << 16) // the oracle is quadratic-ish; keep small
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NaiveMotifCount(set, text); err != nil {
			b.Fatal(err)
		}
	}
}
