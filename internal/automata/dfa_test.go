package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetopt/internal/dna"
)

// encode maps an ACGT string to base codes, failing the test on other
// bytes.
func encode(t *testing.T, s string) []uint8 {
	t.Helper()
	out := make([]uint8, len(s))
	for i := 0; i < len(s); i++ {
		code, ok := dna.EncodeByte(s[i])
		if !ok {
			t.Fatalf("bad test input byte %q", string(s[i]))
		}
		out[i] = code
	}
	return out
}

// randomDNA produces n random ACGT bytes from rng.
func randomDNA(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = dna.Letters[rng.Intn(4)]
	}
	return out
}

func TestCompilePatternValidates(t *testing.T) {
	if _, err := CompilePattern("A("); err == nil {
		t.Fatal("invalid pattern should fail compilation")
	}
	d, err := CompilePattern("TATAAA")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ContextLen != 6 {
		t.Fatalf("ContextLen = %d, want 6", d.ContextLen)
	}
}

func TestCompilePatternUnboundedContext(t *testing.T) {
	d, err := CompilePattern("(AC)*T")
	if err != nil {
		t.Fatal(err)
	}
	if d.ContextLen != 0 {
		t.Fatalf("unbounded pattern ContextLen = %d, want 0", d.ContextLen)
	}
}

func TestDFAExactMatchCounts(t *testing.T) {
	d, err := CompilePattern("ACG")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]uint64{
		"":          0,
		"ACG":       1,
		"AACGG":     1,
		"ACGACG":    2,
		"ACGCGACGT": 2,
		"TTTT":      0,
		"ACACACG":   1,
	}
	for text, want := range cases {
		if got := d.CountMatches([]byte(text)); got != want {
			t.Errorf("count(%q) = %d, want %d", text, got, want)
		}
	}
}

func TestDFAOverlappingMatches(t *testing.T) {
	// AA in AAAA ends at positions 1,2,3 -> 3 matches.
	d, err := CompilePattern("AA")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("AAAA")); got != 3 {
		t.Fatalf("overlap count = %d, want 3", got)
	}
}

func TestDFASeparatorResets(t *testing.T) {
	d, err := CompilePattern("ACG")
	if err != nil {
		t.Fatal(err)
	}
	// The N breaks the match.
	if got := d.CountMatches([]byte("ACNG")); got != 0 {
		t.Fatalf("count with separator = %d, want 0", got)
	}
	if got := d.CountMatches([]byte("ACGNACG")); got != 2 {
		t.Fatalf("count around separator = %d, want 2", got)
	}
}

func TestDFALowercaseInput(t *testing.T) {
	d, err := CompilePattern("ACG")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("acgacg")); got != 2 {
		t.Fatalf("lowercase count = %d, want 2", got)
	}
}

func TestDFAAlternationAndClasses(t *testing.T) {
	d, err := CompilePattern("GT[AG]AGT") // same as GTRAGT
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("GTAAGTxGTGAGTxGTCAGT")); got != 2 {
		t.Fatalf("IUPAC class count = %d, want 2", got)
	}
}

func TestDFARepetition(t *testing.T) {
	// (AC)+G matches ACG, ACACG, ... count end positions.
	d, err := CompilePattern("(AC)+G")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("ACACG")); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := d.CountMatches([]byte("ACGACACG")); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := d.CountMatches([]byte("AG")); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

// TestDeterminizeMatchesNFASimulation differentially tests the subset
// construction against direct NFA simulation on random anchored inputs.
func TestDeterminizeMatchesNFASimulation(t *testing.T) {
	patterns := []string{"ACG", "A|CC", "(A|T)+", "G[AC]?T", "(AC)*G", "A.T", "GTRAGT"}
	rng := rand.New(rand.NewSource(7))
	for _, p := range patterns {
		nfa, err := CompileNFA(p, false) // anchored
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		d := Determinize(nfa)
		if err := d.Validate(); err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(8)
			in := make([]uint8, n)
			for i := range in {
				in[i] = uint8(rng.Intn(4))
			}
			wantAccept := nfa.Simulate(in)
			state := d.Start
			for _, sym := range in {
				state = d.Step(state, sym)
			}
			gotAccept := d.Out[state] > 0
			if gotAccept != wantAccept {
				t.Fatalf("pattern %q input %v: DFA accept %v, NFA %v", p, in, gotAccept, wantAccept)
			}
		}
	}
}

func TestMinimizeReducesAndPreserves(t *testing.T) {
	patterns := []string{"ACGT", "A|C|G|T", "(AC)+T", "GCCRCCATGG", "A?C?G?T"}
	rng := rand.New(rand.NewSource(11))
	for _, p := range patterns {
		nfa, err := CompileNFA(p, true)
		if err != nil {
			t.Fatal(err)
		}
		big := Determinize(nfa)
		small := Minimize(big)
		if small.NumStates() > big.NumStates() {
			t.Fatalf("%q: minimize grew the DFA: %d -> %d", p, big.NumStates(), small.NumStates())
		}
		if err := small.Validate(); err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		// Counting equivalence on random texts.
		for trial := 0; trial < 50; trial++ {
			text := randomDNA(rng, rng.Intn(200))
			if a, b := big.CountMatches(text), small.CountMatches(text); a != b {
				t.Fatalf("%q: counts diverge after minimization: %d vs %d", p, a, b)
			}
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	nfa, err := CompileNFA("GC(A|G)CC", true)
	if err != nil {
		t.Fatal(err)
	}
	once := Minimize(Determinize(nfa))
	twice := Minimize(once)
	if once.NumStates() != twice.NumStates() {
		t.Fatalf("minimize not idempotent: %d vs %d states", once.NumStates(), twice.NumStates())
	}
}

func TestCountFromComposition(t *testing.T) {
	// Streaming a text in two halves from the carried state must equal
	// streaming it whole.
	d, err := CompilePattern("GAATTC")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		text := randomDNA(rng, 500)
		cut := rng.Intn(len(text))
		whole := d.CountMatches(text)
		c1, s := d.CountFrom(d.Start, text[:cut])
		c2, _ := d.CountFrom(s, text[cut:])
		if c1+c2 != whole {
			t.Fatalf("split at %d: %d + %d != %d", cut, c1, c2, whole)
		}
	}
}

func TestFinalStateAgreesWithCountFrom(t *testing.T) {
	d, err := CompilePattern("GGATCC")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	text := randomDNA(rng, 1000)
	_, s1 := d.CountFrom(d.Start, text)
	s2 := d.FinalState(d.Start, text)
	if s1 != s2 {
		t.Fatalf("states diverge: %d vs %d", s1, s2)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, err := CompilePattern("ACG")
	if err != nil {
		t.Fatal(err)
	}
	bad := &DFA{Next: append([][4]int32(nil), d.Next...), Out: append([]uint32(nil), d.Out...), Start: d.Start}
	bad.Next[0][2] = int32(bad.NumStates()) // out of range
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupt transition should fail validation")
	}
	if err := (&DFA{}).Validate(); err == nil {
		t.Fatal("empty DFA should fail validation")
	}
	short := &DFA{Next: d.Next, Out: d.Out[:1], Start: 0}
	if err := short.Validate(); err == nil {
		t.Fatal("mismatched Out length should fail validation")
	}
	negStart := &DFA{Next: d.Next, Out: d.Out, Start: -1}
	if err := negStart.Validate(); err == nil {
		t.Fatal("negative start should fail validation")
	}
}

// Property: warm-up correctness of bounded-context DFAs — the state after
// any text depends only on the last ContextLen symbols.
func TestContextLenProperty(t *testing.T) {
	d, err := CompilePattern("GCCRCCATGG")
	if err != nil {
		t.Fatal(err)
	}
	if d.ContextLen <= 0 {
		t.Fatal("finite pattern must advertise a context length")
	}
	f := func(prefixSeed, suffixSeed int64, nPrefix uint8) bool {
		rngP := rand.New(rand.NewSource(prefixSeed))
		rngS := rand.New(rand.NewSource(suffixSeed))
		prefixA := randomDNA(rngP, int(nPrefix))
		prefixB := randomDNA(rngP, int(nPrefix)) // different prefix
		suffix := randomDNA(rngS, d.ContextLen)
		sA := d.FinalState(d.Start, append(append([]byte{}, prefixA...), suffix...))
		sB := d.FinalState(d.Start, append(append([]byte{}, prefixB...), suffix...))
		return sA == sB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDFAStringRendering(t *testing.T) {
	d, err := CompilePattern("AC")
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if len(s) == 0 || s[0] != 'D' {
		t.Fatalf("unexpected String output: %q", s)
	}
}
