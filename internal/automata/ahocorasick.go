package automata

import (
	"fmt"

	"hetopt/internal/dna"
)

// maxIUPACExpansion bounds how many concrete strings one IUPAC motif may
// expand to; it guards against pathological inputs such as "NNNNNNNNNN".
const maxIUPACExpansion = 4096

// expandMotif expands a motif pattern containing IUPAC ambiguity codes
// into the complete list of concrete encoded strings it denotes.
func expandMotif(pattern string) ([][]uint8, error) {
	if pattern == "" {
		return nil, fmt.Errorf("automata: empty motif pattern")
	}
	acc := [][]uint8{{}}
	for i := 0; i < len(pattern); i++ {
		set, err := dna.ExpandIUPAC(pattern[i])
		if err != nil {
			return nil, fmt.Errorf("automata: motif %q: %v", pattern, err)
		}
		if len(acc)*len(set) > maxIUPACExpansion {
			return nil, fmt.Errorf("automata: motif %q expands to more than %d concrete patterns", pattern, maxIUPACExpansion)
		}
		next := make([][]uint8, 0, len(acc)*len(set))
		for _, prefix := range acc {
			for _, base := range set {
				ext := make([]uint8, len(prefix)+1)
				copy(ext, prefix)
				ext[len(prefix)] = base
				next = append(next, ext)
			}
		}
		acc = next
	}
	return acc, nil
}

// CompileMotifs builds an Aho-Corasick automaton for a motif set and
// returns it as a dense DFA. Out[s] counts how many motif occurrences end
// when entering s (distinct motifs ending at the same position each
// count). The returned automaton has ContextLen equal to the longest
// concrete pattern: its state after any text depends only on that many
// trailing symbols, which makes warm-up parallel matching exact.
//
// Duplicate concrete patterns (e.g. two IUPAC motifs expanding to the same
// string) are each counted, matching the semantics of searching for every
// motif independently.
func CompileMotifs(motifs []dna.Motif) (*DFA, error) {
	if len(motifs) == 0 {
		return nil, fmt.Errorf("automata: no motifs to compile")
	}
	var patterns [][]uint8
	maxLen := 0
	for _, m := range motifs {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		exp, err := expandMotif(m.Pattern)
		if err != nil {
			return nil, err
		}
		for _, p := range exp {
			patterns = append(patterns, p)
			if len(p) > maxLen {
				maxLen = len(p)
			}
		}
	}

	// Trie construction. goto_[s][b] = child or -1.
	type trieState struct {
		next  [dna.AlphabetSize]int32
		out   uint32
		fail  int32
		depth int
	}
	states := []trieState{{next: [dna.AlphabetSize]int32{-1, -1, -1, -1}}}
	for _, p := range patterns {
		cur := int32(0)
		for _, b := range p {
			if states[cur].next[b] == -1 {
				states = append(states, trieState{
					next:  [dna.AlphabetSize]int32{-1, -1, -1, -1},
					depth: states[cur].depth + 1,
				})
				states[cur].next[b] = int32(len(states) - 1)
			}
			cur = states[cur].next[b]
		}
		states[cur].out++
	}

	// Failure links via BFS; simultaneously complete the transition
	// function (convert goto+fail into a dense delta) and accumulate
	// output counts along failure chains.
	queue := make([]int32, 0, len(states))
	for b := 0; b < dna.AlphabetSize; b++ {
		c := states[0].next[b]
		if c == -1 {
			states[0].next[b] = 0
			continue
		}
		states[c].fail = 0
		queue = append(queue, c)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		// Inherit match counts from the failure target: every pattern
		// ending at fail(s) also ends at s.
		states[s].out += states[states[s].fail].out
		for b := 0; b < dna.AlphabetSize; b++ {
			c := states[s].next[b]
			if c == -1 {
				states[s].next[b] = states[states[s].fail].next[b]
				continue
			}
			states[c].fail = states[states[s].fail].next[b]
			queue = append(queue, c)
		}
	}

	d := &DFA{
		Next:       make([][dna.AlphabetSize]int32, len(states)),
		Out:        make([]uint32, len(states)),
		Start:      0,
		ContextLen: maxLen,
	}
	for i, st := range states {
		d.Next[i] = st.next
		d.Out[i] = st.out
	}
	return d, nil
}

// NaiveMotifCount counts motif occurrences in text by brute force,
// including overlapping occurrences and duplicate expansions. Bytes
// outside ACGT break matches, mirroring the DFA engine's reset semantics.
// It exists as the differential-testing oracle for the automata and
// parallel matching engines.
func NaiveMotifCount(motifs []dna.Motif, text []byte) (uint64, error) {
	var total uint64
	for _, m := range motifs {
		exp, err := expandMotif(m.Pattern)
		if err != nil {
			return 0, err
		}
		for _, p := range exp {
			for start := 0; start+len(p) <= len(text); start++ {
				ok := true
				for j, want := range p {
					code, valid := dna.EncodeByte(text[start+j])
					if !valid || code != want {
						ok = false
						break
					}
				}
				if ok {
					total++
				}
			}
		}
	}
	return total, nil
}
