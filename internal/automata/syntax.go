// Package automata implements the finite-automata machinery behind the
// paper's DNA sequence analysis application (built on the authors' PaREM
// tool): a small motif-pattern language over the nucleotide alphabet,
// Thompson NFA construction, subset-construction determinization, Hopcroft
// minimization, an Aho-Corasick multi-pattern automaton, and a dense-table
// DFA matching engine.
//
// All automata operate over the 4-symbol encoded alphabet of internal/dna
// (A=0, C=1, G=2, T=3). Input bytes outside ACGT act as separators: they
// reset the automaton to its start state and can never participate in a
// match, which is the conventional treatment of N runs in genomic search.
package automata

import (
	"fmt"

	"hetopt/internal/dna"
)

// node is a parsed pattern AST node.
type node interface{ isNode() }

type literalNode struct{ set classSet } // one position matching a base set
type concatNode struct{ parts []node }
type altNode struct{ options []node }
type starNode struct{ inner node }
type plusNode struct{ inner node }
type optNode struct{ inner node }

func (literalNode) isNode() {}
func (concatNode) isNode()  {}
func (altNode) isNode()     {}
func (starNode) isNode()    {}
func (plusNode) isNode()    {}
func (optNode) isNode()     {}

// classSet is a bitmask over the 4 bases.
type classSet uint8

func (c classSet) has(b uint8) bool { return c&(1<<b) != 0 }

func classOf(bases []uint8) classSet {
	var c classSet
	for _, b := range bases {
		c |= 1 << b
	}
	return c
}

// parser is a recursive-descent parser for the motif pattern language:
//
//	pattern  = alt
//	alt      = seq { "|" seq }
//	seq      = { rep }
//	rep      = atom [ "*" | "+" | "?" ]
//	atom     = "(" alt ")" | "[" class "]" | "." | IUPAC letter
//	class    = IUPAC letter { IUPAC letter }
//
// IUPAC ambiguity codes (N, R, Y, ...) denote base classes, "." is any
// base. The language is deliberately small: it covers biological motifs
// (which are finite strings over ambiguity codes) plus enough regex
// structure (alternation, repetition) to exercise general NFA
// determinization.
type parser struct {
	src string
	pos int
}

// ParsePattern parses a motif pattern into an AST for NFA compilation. It
// returns an error describing the offending position for malformed input.
func ParsePattern(pattern string) (node, error) {
	if pattern == "" {
		return nil, fmt.Errorf("automata: empty pattern")
	}
	p := &parser{src: pattern}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("automata: pattern %q: unexpected %q at position %d", pattern, string(p.src[p.pos]), p.pos)
	}
	return n, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	prefix := fmt.Sprintf("automata: pattern %q: position %d: ", p.src, p.pos)
	return fmt.Errorf(prefix+format, args...)
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseAlt() (node, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	options := []node{first}
	for {
		b, ok := p.peek()
		if !ok || b != '|' {
			break
		}
		p.pos++
		next, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		options = append(options, next)
	}
	if len(options) == 1 {
		return options[0], nil
	}
	return altNode{options: options}, nil
}

func (p *parser) parseSeq() (node, error) {
	var parts []node
	for {
		b, ok := p.peek()
		if !ok || b == '|' || b == ')' {
			break
		}
		rep, err := p.parseRep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, rep)
	}
	if len(parts) == 0 {
		return nil, p.errf("empty sequence (use '.' to match any base)")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return concatNode{parts: parts}, nil
}

func (p *parser) parseRep() (node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	b, ok := p.peek()
	if !ok {
		return atom, nil
	}
	switch b {
	case '*':
		p.pos++
		return starNode{inner: atom}, nil
	case '+':
		p.pos++
		return plusNode{inner: atom}, nil
	case '?':
		p.pos++
		return optNode{inner: atom}, nil
	}
	return atom, nil
}

func (p *parser) parseAtom() (node, error) {
	b, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of pattern")
	}
	switch b {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	case '[':
		p.pos++
		var set classSet
		for {
			c, ok := p.peek()
			if !ok {
				return nil, p.errf("missing ']'")
			}
			if c == ']' {
				p.pos++
				break
			}
			bases, err := dna.ExpandIUPAC(c)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			set |= classOf(bases)
			p.pos++
		}
		if set == 0 {
			return nil, p.errf("empty character class")
		}
		return literalNode{set: set}, nil
	case '.':
		p.pos++
		return literalNode{set: classOf([]uint8{dna.BaseA, dna.BaseC, dna.BaseG, dna.BaseT})}, nil
	case '*', '+', '?':
		return nil, p.errf("repetition %q has nothing to repeat", string(b))
	case ')':
		return nil, p.errf("unmatched ')'")
	default:
		bases, err := dna.ExpandIUPAC(b)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.pos++
		return literalNode{set: classOf(bases)}, nil
	}
}

// patternHasRepetition reports whether the AST contains * or +, i.e.
// matches of unbounded length. Patterns without repetition have a bounded
// match length, which enables the exact warm-up parallel matching
// strategy.
func patternHasRepetition(n node) bool {
	switch v := n.(type) {
	case literalNode:
		return false
	case concatNode:
		for _, p := range v.parts {
			if patternHasRepetition(p) {
				return true
			}
		}
		return false
	case altNode:
		for _, p := range v.options {
			if patternHasRepetition(p) {
				return true
			}
		}
		return false
	case starNode, plusNode:
		return true
	case optNode:
		return patternHasRepetition(v.inner)
	default:
		return true
	}
}

// patternMaxLength returns the maximum match length of the AST, or -1 when
// unbounded.
func patternMaxLength(n node) int {
	switch v := n.(type) {
	case literalNode:
		return 1
	case concatNode:
		total := 0
		for _, p := range v.parts {
			l := patternMaxLength(p)
			if l < 0 {
				return -1
			}
			total += l
		}
		return total
	case altNode:
		maxL := 0
		for _, p := range v.options {
			l := patternMaxLength(p)
			if l < 0 {
				return -1
			}
			if l > maxL {
				maxL = l
			}
		}
		return maxL
	case optNode:
		return patternMaxLength(v.inner)
	default: // star, plus
		return -1
	}
}
