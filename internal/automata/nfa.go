package automata

import (
	"fmt"

	"hetopt/internal/dna"
)

// NFA is a Thompson-constructed nondeterministic finite automaton over the
// 4-symbol base alphabet. States are numbered densely; each state carries
// up to two epsilon edges (a property of Thompson construction) and a
// class-labelled symbol edge.
type NFA struct {
	// eps1, eps2 hold epsilon successors (-1 = none).
	eps1, eps2 []int32
	// symTo is the symbol-edge successor (-1 = none); symClass is its
	// label.
	symTo    []int32
	symClass []classSet
	// Start and Accept are the entry and single accepting state.
	Start, Accept int32
	// maxMatchLen is the maximum match length, or -1 when unbounded.
	maxMatchLen int
}

// NumStates returns the number of NFA states.
func (n *NFA) NumStates() int { return len(n.eps1) }

// MaxMatchLen returns the maximum match length of the compiled pattern, or
// -1 when the pattern contains unbounded repetition.
func (n *NFA) MaxMatchLen() int { return n.maxMatchLen }

func (n *NFA) newState() int32 {
	n.eps1 = append(n.eps1, -1)
	n.eps2 = append(n.eps2, -1)
	n.symTo = append(n.symTo, -1)
	n.symClass = append(n.symClass, 0)
	return int32(len(n.eps1) - 1)
}

func (n *NFA) addEps(from, to int32) {
	if n.eps1[from] == -1 {
		n.eps1[from] = to
		return
	}
	if n.eps2[from] == -1 {
		n.eps2[from] = to
		return
	}
	// Thompson construction never needs more than two epsilon edges.
	panic(fmt.Sprintf("automata: state %d already has two epsilon edges", from))
}

// frag is an NFA fragment with dangling accept.
type frag struct{ start, accept int32 }

// CompileNFA parses pattern and builds its Thompson NFA. When unanchored
// is true the start state loops on every symbol, turning the automaton
// into a substring searcher (matches may begin at any position).
func CompileNFA(pattern string, unanchored bool) (*NFA, error) {
	ast, err := ParsePattern(pattern)
	if err != nil {
		return nil, err
	}
	n := &NFA{maxMatchLen: patternMaxLength(ast)}
	f := n.build(ast)
	if unanchored {
		// Fresh start state with self-loops on all bases plus an epsilon
		// edge into the pattern. A symbol edge and an epsilon edge can
		// coexist on one state.
		s := n.newState()
		n.symTo[s] = s
		n.symClass[s] = classOf([]uint8{dna.BaseA, dna.BaseC, dna.BaseG, dna.BaseT})
		n.addEps(s, f.start)
		n.Start = s
	} else {
		n.Start = f.start
	}
	n.Accept = f.accept
	return n, nil
}

// build recursively assembles Thompson fragments.
func (n *NFA) build(ast node) frag {
	switch v := ast.(type) {
	case literalNode:
		s := n.newState()
		a := n.newState()
		n.symTo[s] = a
		n.symClass[s] = v.set
		return frag{s, a}
	case concatNode:
		cur := n.build(v.parts[0])
		for _, p := range v.parts[1:] {
			next := n.build(p)
			n.addEps(cur.accept, next.start)
			cur = frag{cur.start, next.accept}
		}
		return cur
	case altNode:
		s := n.newState()
		a := n.newState()
		// Thompson alternation is binary; fold multi-way alternation into
		// a chain of binary splits.
		cur := n.build(v.options[0])
		for _, opt := range v.options[1:] {
			right := n.build(opt)
			split := n.newState()
			join := n.newState()
			n.addEps(split, cur.start)
			n.addEps(split, right.start)
			n.addEps(cur.accept, join)
			n.addEps(right.accept, join)
			cur = frag{split, join}
		}
		n.addEps(s, cur.start)
		n.addEps(cur.accept, a)
		return frag{s, a}
	case starNode:
		inner := n.build(v.inner)
		s := n.newState()
		a := n.newState()
		n.addEps(s, inner.start)
		n.addEps(s, a)
		n.addEps(inner.accept, inner.start)
		n.addEps(inner.accept, a)
		return frag{s, a}
	case plusNode:
		inner := n.build(v.inner)
		a := n.newState()
		n.addEps(inner.accept, inner.start)
		n.addEps(inner.accept, a)
		return frag{inner.start, a}
	case optNode:
		inner := n.build(v.inner)
		s := n.newState()
		a := n.newState()
		n.addEps(s, inner.start)
		n.addEps(s, a)
		n.addEps(inner.accept, a)
		return frag{s, a}
	default:
		panic(fmt.Sprintf("automata: unknown AST node %T", ast))
	}
}

// epsClosure expands set (a sorted slice of states) with all
// epsilon-reachable states, returning a sorted, deduplicated slice. The
// visited scratch buffer must have NumStates entries and is reset on
// return.
func (n *NFA) epsClosure(set []int32, visited []bool) []int32 {
	stack := append([]int32(nil), set...)
	var out []int32
	for _, s := range set {
		visited[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for _, t := range [2]int32{n.eps1[s], n.eps2[s]} {
			if t >= 0 && !visited[t] {
				visited[t] = true
				stack = append(stack, t)
			}
		}
	}
	sortInt32(out)
	for _, s := range out {
		visited[s] = false
	}
	return out
}

// move returns the sorted set of states reachable from set on symbol sym
// (before epsilon closure).
func (n *NFA) move(set []int32, sym uint8) []int32 {
	var out []int32
	for _, s := range set {
		if t := n.symTo[s]; t >= 0 && n.symClass[s].has(sym) {
			out = append(out, t)
		}
	}
	sortInt32(out)
	return dedupInt32(out)
}

// Simulate runs the NFA over encoded input (values 0..3) and reports
// whether it ends in the accepting state. It exists chiefly as a reference
// implementation for differential tests against the DFA.
func (n *NFA) Simulate(encoded []uint8) bool {
	visited := make([]bool, n.NumStates())
	cur := n.epsClosure([]int32{n.Start}, visited)
	for _, sym := range encoded {
		next := n.move(cur, sym)
		if len(next) == 0 {
			cur = nil
			break
		}
		cur = n.epsClosure(next, visited)
	}
	for _, s := range cur {
		if s == n.Accept {
			return true
		}
	}
	return false
}

func sortInt32(xs []int32) {
	// Insertion sort: sets are small (Thompson fragments) and often
	// nearly sorted.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedupInt32(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
