package automata

import (
	"hetopt/internal/dna"
)

// Minimize returns an equivalent DFA with the minimal number of states,
// using Hopcroft's partition-refinement algorithm. The initial partition
// groups states by their Out multiplicity (not merely accept/reject), so
// match counting is preserved exactly. ContextLen carries over: state
// merging cannot lengthen the context a state depends on.
func Minimize(d *DFA) *DFA {
	n := d.NumStates()
	if n == 0 {
		return d
	}

	// Build reverse transitions: rev[sym][t] lists states s with
	// d.Next[s][sym] == t.
	var rev [dna.AlphabetSize][][]int32
	for sym := 0; sym < dna.AlphabetSize; sym++ {
		rev[sym] = make([][]int32, n)
	}
	for s := 0; s < n; s++ {
		for sym := 0; sym < dna.AlphabetSize; sym++ {
			t := d.Next[s][sym]
			rev[sym][t] = append(rev[sym][t], int32(s))
		}
	}

	// Initial partition: group by Out value.
	blockOf := make([]int32, n)
	groups := map[uint32]int32{}
	var blocks [][]int32
	for s := 0; s < n; s++ {
		g, ok := groups[d.Out[s]]
		if !ok {
			g = int32(len(blocks))
			groups[d.Out[s]] = g
			blocks = append(blocks, nil)
		}
		blockOf[s] = g
		blocks[g] = append(blocks[g], int32(s))
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct {
		block int32
		sym   uint8
	}
	var work []splitter
	inWork := map[splitter]bool{}
	push := func(b int32, sym uint8) {
		sp := splitter{b, sym}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	for b := range blocks {
		for sym := uint8(0); sym < dna.AlphabetSize; sym++ {
			push(int32(b), sym)
		}
	}

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[splitter{sp.block, sp.sym}] = false

		// X = set of states with a sym-transition into sp.block.
		touched := map[int32][]int32{} // block -> members in X
		for _, t := range blocks[sp.block] {
			for _, s := range rev[sp.sym][t] {
				b := blockOf[s]
				touched[b] = append(touched[b], s)
			}
		}
		for b, inX := range touched {
			if len(inX) == len(blocks[b]) {
				continue // block entirely inside X: no split
			}
			// Split block b into inX and the rest.
			inXSet := make(map[int32]bool, len(inX))
			for _, s := range inX {
				inXSet[s] = true
			}
			var rest []int32
			for _, s := range blocks[b] {
				if !inXSet[s] {
					rest = append(rest, s)
				}
			}
			newB := int32(len(blocks))
			// Keep the larger part in place; move the smaller out
			// (Hopcroft's "process the smaller half").
			small, large := inX, rest
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[b] = large
			blocks = append(blocks, small)
			for _, s := range small {
				blockOf[s] = newB
			}
			for sym := uint8(0); sym < dna.AlphabetSize; sym++ {
				if inWork[splitter{b, sym}] {
					push(newB, sym)
				} else {
					push(newB, sym)
					push(b, sym)
				}
			}
		}
	}

	// Assemble the quotient automaton.
	out := &DFA{
		Next:       make([][dna.AlphabetSize]int32, len(blocks)),
		Out:        make([]uint32, len(blocks)),
		Start:      blockOf[d.Start],
		ContextLen: d.ContextLen,
	}
	for b, members := range blocks {
		repr := members[0]
		out.Out[b] = d.Out[repr]
		for sym := uint8(0); sym < dna.AlphabetSize; sym++ {
			out.Next[b][sym] = blockOf[d.Next[repr][sym]]
		}
	}
	return out
}
