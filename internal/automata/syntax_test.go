package automata

import (
	"strings"
	"testing"
)

func TestParseValidPatterns(t *testing.T) {
	valid := []string{
		"TATAAA",
		"GTRAGT",
		"A|C|G",
		"(AC)*T",
		"A+C?G",
		"[ACG]T",
		"[RY]N",
		".A.",
		"(A|T)(C|G)",
		"GCC(A|G)CCATGG",
	}
	for _, p := range valid {
		if _, err := ParsePattern(p); err != nil {
			t.Errorf("ParsePattern(%q) failed: %v", p, err)
		}
	}
}

func TestParseInvalidPatterns(t *testing.T) {
	invalid := map[string]string{
		"":       "empty",
		"AX":     "not an IUPAC",
		"(A":     "missing ')'",
		"A)":     "unexpected",
		"(|)":    "empty sequence",
		"[AC":    "missing ']'",
		"[]A":    "empty character class",
		"*A":     "nothing to repeat",
		"+":      "nothing to repeat",
		"A|":     "empty sequence",
		"|A":     "empty sequence",
		"A||C":   "empty sequence",
		"()":     "empty sequence",
		"[AXC]T": "not an IUPAC",
	}
	for p, wantSub := range invalid {
		_, err := ParsePattern(p)
		if err == nil {
			t.Errorf("ParsePattern(%q) should fail", p)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("ParsePattern(%q) error = %q, want substring %q", p, err, wantSub)
		}
	}
}

func TestPatternMaxLength(t *testing.T) {
	cases := map[string]int{
		"TATAAA":      6,
		"A|CCC":       3,
		"(A|T)(C|G)":  2,
		"A?C":         2,
		"GCCRCCATGG":  10,
		"A*C":         -1,
		"A+":          -1,
		"(AC)*T":      -1,
		"((A|C)T)?GG": 4,
	}
	for p, want := range cases {
		ast, err := ParsePattern(p)
		if err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		if got := patternMaxLength(ast); got != want {
			t.Errorf("maxLength(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestPatternHasRepetition(t *testing.T) {
	cases := map[string]bool{
		"TATAAA": false,
		"A?C":    false,
		"A*":     true,
		"A+C":    true,
		"(A*)?":  true,
		"A|C":    false,
	}
	for p, want := range cases {
		ast, err := ParsePattern(p)
		if err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		if got := patternHasRepetition(ast); got != want {
			t.Errorf("hasRepetition(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestClassSetSemantics(t *testing.T) {
	set := classOf([]uint8{0, 2})
	if !set.has(0) || set.has(1) || !set.has(2) || set.has(3) {
		t.Fatalf("classOf({A,G}) misbehaves: %04b", set)
	}
}
