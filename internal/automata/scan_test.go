package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetopt/internal/dna"
)

func TestFindAllPositions(t *testing.T) {
	d, err := CompileMotifs(motifs("ACG"))
	if err != nil {
		t.Fatal(err)
	}
	// ACG ends at 3; ACGACG ends at 3 and 6.
	matches := d.FindAll([]byte("ACGACG"), 0)
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].End != 3 || matches[1].End != 6 {
		t.Fatalf("positions = %v, want ends 3 and 6", matches)
	}
	if matches[0].Count != 1 {
		t.Fatalf("count = %d", matches[0].Count)
	}
}

func TestFindAllLimit(t *testing.T) {
	d, err := CompileMotifs(motifs("AA"))
	if err != nil {
		t.Fatal(err)
	}
	matches := d.FindAll([]byte("AAAAAAAA"), 3)
	if len(matches) != 3 {
		t.Fatalf("limit ignored: %d matches", len(matches))
	}
}

func TestFindAllMultiplicity(t *testing.T) {
	d, err := CompileMotifs(motifs("ACG", "CG"))
	if err != nil {
		t.Fatal(err)
	}
	matches := d.FindAll([]byte("ACG"), 0)
	// Both ACG and CG end at position 3.
	if len(matches) != 1 || matches[0].Count != 2 {
		t.Fatalf("matches = %v, want one event of count 2", matches)
	}
}

func TestScanChainsAcrossSections(t *testing.T) {
	d, err := CompileMotifs(motifs("GAATTC"))
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("TTGAATTCTT")
	var whole []Match
	d.Scan(d.Start, 0, text, func(m Match) bool { whole = append(whole, m); return true })

	var split []Match
	state := d.Scan(d.Start, 0, text[:5], func(m Match) bool { split = append(split, m); return true })
	d.Scan(state, 5, text[5:], func(m Match) bool { split = append(split, m); return true })
	if len(whole) != 1 || len(split) != 1 || whole[0] != split[0] {
		t.Fatalf("whole %v != split %v", whole, split)
	}
}

// Property: Scan events sum to CountMatches for random inputs.
func TestScanCountsAgreeProperty(t *testing.T) {
	d, err := CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomDNA(rng, int(n))
		var total uint64
		d.Scan(d.Start, 0, text, func(m Match) bool {
			total += uint64(m.Count)
			return true
		})
		return total == d.CountMatches(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBothStrandsFindsReverseComplement(t *testing.T) {
	// TATAAA's reverse complement is TTTATA.
	d, err := CompileMotifsBothStrands([]dna.Motif{{Name: "tata", Pattern: "TATAAA"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("ccTATAAAcc")); got != 1 {
		t.Fatalf("forward count = %d", got)
	}
	if got := d.CountMatches([]byte("ccTTTATAcc")); got != 1 {
		t.Fatalf("reverse-strand count = %d", got)
	}
}

func TestBothStrandsPalindromeCountedOnce(t *testing.T) {
	// GAATTC is its own reverse complement (EcoRI site).
	d, err := CompileMotifsBothStrands([]dna.Motif{{Name: "EcoRI", Pattern: "GAATTC"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("GAATTC")); got != 1 {
		t.Fatalf("palindromic site counted %d times, want 1", got)
	}
}

func TestBothStrandsIUPAC(t *testing.T) {
	// GTRAGT (R = A|G) reverse complement is ACTYAC (Y = C|T).
	d, err := CompileMotifsBothStrands([]dna.Motif{{Name: "donor", Pattern: "GTRAGT"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, hit := range []string{"GTAAGT", "GTGAGT", "ACTCAC", "ACTTAC"} {
		if got := d.CountMatches([]byte(hit)); got != 1 {
			t.Errorf("%s counted %d times, want 1", hit, got)
		}
	}
	if got := d.CountMatches([]byte("GTCAGT")); got != 0 {
		t.Errorf("non-matching strand variant counted %d times", got)
	}
}

func TestBothStrandsValidation(t *testing.T) {
	if _, err := CompileMotifsBothStrands([]dna.Motif{{Name: "bad", Pattern: ""}}); err == nil {
		t.Fatal("empty motif should fail")
	}
}
