package ml

import "fmt"

// Normalizer rescales features to [0,1] per column (min-max scaling), the
// "Normalize Data" stage of the paper's Figure 4 training pipeline. The
// scaler is fitted on training data and then applied to unseen samples;
// constant columns map to 0.
type Normalizer struct {
	Min, Max []float64
}

// FitNormalizer learns per-column ranges from the dataset.
func FitNormalizer(d *Dataset) (*Normalizer, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	dim := d.Dim()
	n := &Normalizer{Min: make([]float64, dim), Max: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		n.Min[j] = d.X[0][j]
		n.Max[j] = d.X[0][j]
	}
	for _, row := range d.X {
		for j, v := range row {
			if v < n.Min[j] {
				n.Min[j] = v
			}
			if v > n.Max[j] {
				n.Max[j] = v
			}
		}
	}
	return n, nil
}

// Apply rescales one sample into a fresh slice.
func (n *Normalizer) Apply(x []float64) ([]float64, error) {
	if len(x) != len(n.Min) {
		return nil, fmt.Errorf("ml: normalizer fitted on %d features, got %d", len(n.Min), len(x))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		span := n.Max[j] - n.Min[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - n.Min[j]) / span
	}
	return out, nil
}

// ApplyDataset rescales every row into a new dataset (targets shared).
func (n *Normalizer) ApplyDataset(d *Dataset) (*Dataset, error) {
	out := &Dataset{FeatureNames: d.FeatureNames, Y: d.Y}
	for i, row := range d.X {
		nx, err := n.Apply(row)
		if err != nil {
			return nil, fmt.Errorf("ml: row %d: %w", i, err)
		}
		out.X = append(out.X, nx)
	}
	return out, nil
}
