package ml

import (
	"math"
	"testing"
)

func benchData(n int) *Dataset {
	return synth(n, 5, 99, 0.03, func(x []float64) float64 {
		return 100/(x[0]+1) + 0.2*x[1] + math.Abs(x[2]-5)
	})
}

func BenchmarkFitTree(b *testing.B) {
	b.ReportAllocs()
	d := benchData(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitTree(d, d.Y, TreeOptions{MaxDepth: 7, MinLeaf: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitBoostedTrees100(b *testing.B) {
	b.ReportAllocs()
	d := benchData(1500)
	opt := BoostOptions{Rounds: 100, LearningRate: 0.1, Tree: TreeOptions{MaxDepth: 6, MinLeaf: 5}, Subsample: 0.9, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitBoostedTrees(d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoostedPredict(b *testing.B) {
	b.ReportAllocs()
	d := benchData(1500)
	m, err := FitBoostedTrees(d, BoostOptions{Rounds: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probe := d.X[42]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(probe)
	}
}

func BenchmarkFitLinear(b *testing.B) {
	b.ReportAllocs()
	d := benchData(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(d, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPoisson(b *testing.B) {
	b.ReportAllocs()
	d := benchData(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPoisson(d, PoissonOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	b.ReportAllocs()
	d := benchData(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := CrossValidate(d, 4, 1, func(train *Dataset) (Regressor, error) {
			return FitBoostedTrees(train, BoostOptions{Rounds: 30, Seed: 1})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
