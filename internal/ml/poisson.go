package ml

import (
	"fmt"
	"math"
)

// PoissonModel is Poisson regression with a log link, fitted by
// iteratively reweighted least squares; the second alternative regressor
// the paper considered.
type PoissonModel struct {
	// Weights has one coefficient per feature plus a trailing intercept.
	Weights []float64
}

// Predict implements Regressor, returning exp(x.w + b).
func (m *PoissonModel) Predict(x []float64) float64 {
	eta := m.Weights[len(m.Weights)-1]
	for j, w := range m.Weights[:len(m.Weights)-1] {
		eta += w * x[j]
	}
	return math.Exp(eta)
}

// PoissonOptions configures the IRLS fit.
type PoissonOptions struct {
	// MaxIter bounds the IRLS iterations. Zero selects 50.
	MaxIter int
	// Tol is the convergence threshold on the max weight change. Zero
	// selects 1e-8.
	Tol float64
	// Ridge dampens the weighted normal equations. Zero selects 1e-6.
	Ridge float64
}

func (o PoissonOptions) withDefaults() PoissonOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.Ridge == 0 {
		o.Ridge = 1e-6
	}
	return o
}

// FitPoisson fits Poisson regression on strictly positive targets.
func FitPoisson(d *Dataset, opt PoissonOptions) (*PoissonModel, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	for i, y := range d.Y {
		if y <= 0 {
			return nil, fmt.Errorf("ml: poisson regression requires positive targets (sample %d has %g)", i, y)
		}
	}
	dim := d.Dim() + 1
	w := make([]float64, dim)
	// Initialize the intercept at log(mean(y)).
	mean := 0.0
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(d.Len())
	w[dim-1] = math.Log(mean)

	row := make([]float64, dim)
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Weighted normal equations: (X^T W X) delta-target.
		ata := make([][]float64, dim)
		for i := range ata {
			ata[i] = make([]float64, dim)
		}
		atb := make([]float64, dim)
		for i, x := range d.X {
			copy(row, x)
			row[dim-1] = 1
			eta := 0.0
			for j := 0; j < dim; j++ {
				eta += w[j] * row[j]
			}
			if eta > 30 {
				eta = 30 // keep exp finite; IRLS recovers next iteration
			}
			mu := math.Exp(eta)
			z := eta + (d.Y[i]-mu)/mu // working response
			for a := 0; a < dim; a++ {
				for b := a; b < dim; b++ {
					ata[a][b] += mu * row[a] * row[b]
				}
				atb[a] += mu * row[a] * z
			}
		}
		for a := 0; a < dim; a++ {
			for b := 0; b < a; b++ {
				ata[a][b] = ata[b][a]
			}
			ata[a][a] += opt.Ridge
		}
		next, err := solveCholesky(ata, atb)
		if err != nil {
			return nil, fmt.Errorf("ml: poisson IRLS iteration %d: %w", iter, err)
		}
		delta := 0.0
		for j := range w {
			if d := math.Abs(next[j] - w[j]); d > delta {
				delta = d
			}
		}
		w = next
		if delta < opt.Tol {
			break
		}
	}
	return &PoissonModel{Weights: w}, nil
}
