package ml

import (
	"fmt"
	"math"
	"sort"
)

// TreeOptions configures CART regression-tree induction.
type TreeOptions struct {
	// MaxDepth bounds the tree depth (root = depth 0). Zero selects 5.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf. Zero selects 1.
	MinLeaf int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 5
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 1
	}
	return o
}

// treeNode is one node of a regression tree, stored in a flat arena.
type treeNode struct {
	// feature is the split feature, or -1 for leaves.
	feature int
	// threshold routes x[feature] <= threshold to left, else right.
	threshold float64
	// left, right index the arena.
	left, right int32
	// value is the leaf prediction (mean of targets).
	value float64
}

// Tree is a fitted CART regression tree.
type Tree struct {
	nodes []treeNode
}

// NumNodes returns the node count (diagnostics).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Depth returns the maximum depth (root = 0).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}

// Predict evaluates the tree on one sample.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// FitTree builds a regression tree minimizing squared error, using exact
// greedy splits over all features. targets may differ from d.Y (boosting
// fits trees to residuals); len(targets) must equal d.Len().
func FitTree(d *Dataset, targets []float64, opt TreeOptions) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(targets) != d.Len() {
		return nil, fmt.Errorf("ml: %d targets for %d samples", len(targets), d.Len())
	}
	opt = opt.withDefaults()
	if opt.MaxDepth < 0 || opt.MinLeaf < 1 {
		return nil, fmt.Errorf("ml: invalid tree options %+v", opt)
	}
	t := &Tree{}
	indices := make([]int, d.Len())
	for i := range indices {
		indices[i] = i
	}
	b := &treeBuilder{data: d, targets: targets, opt: opt, tree: t}
	b.build(indices, 0)
	return t, nil
}

type treeBuilder struct {
	data    *Dataset
	targets []float64
	opt     TreeOptions
	tree    *Tree
}

// build grows the subtree over the given sample indices and returns its
// arena index. indices is consumed (re-partitioned in place).
func (b *treeBuilder) build(indices []int, depth int) int32 {
	mean := 0.0
	for _, i := range indices {
		mean += b.targets[i]
	}
	mean /= float64(len(indices))

	id := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1, value: mean})

	if depth >= b.opt.MaxDepth || len(indices) < 2*b.opt.MinLeaf {
		return id
	}
	feature, threshold, ok := b.bestSplit(indices)
	if !ok {
		return id
	}
	// Partition in place.
	lo, hi := 0, len(indices)
	for lo < hi {
		if b.data.X[indices[lo]][feature] <= threshold {
			lo++
		} else {
			hi--
			indices[lo], indices[hi] = indices[hi], indices[lo]
		}
	}
	left, right := indices[:lo], indices[lo:]
	if len(left) == 0 || len(right) == 0 {
		return id // numerical degeneracy; keep the leaf
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.nodes[id].feature = feature
	b.tree.nodes[id].threshold = threshold
	b.tree.nodes[id].left = l
	b.tree.nodes[id].right = r
	return id
}

// bestSplit scans every feature for the squared-error-minimizing split
// honoring MinLeaf. It returns ok=false when no valid split improves on
// the parent.
func (b *treeBuilder) bestSplit(indices []int) (feature int, threshold float64, ok bool) {
	n := len(indices)
	totalSum, totalSq := 0.0, 0.0
	for _, i := range indices {
		y := b.targets[i]
		totalSum += y
		totalSq += y * y
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	bestGain := 1e-12 // require strictly positive improvement
	sorted := make([]int, n)
	for f := 0; f < b.data.Dim(); f++ {
		copy(sorted, indices)
		sort.Slice(sorted, func(a, c int) bool {
			return b.data.X[sorted[a]][f] < b.data.X[sorted[c]][f]
		})
		leftSum, leftSq := 0.0, 0.0
		for k := 0; k < n-1; k++ {
			y := b.targets[sorted[k]]
			leftSum += y
			leftSq += y * y
			vk, vk1 := b.data.X[sorted[k]][f], b.data.X[sorted[k+1]][f]
			if vk == vk1 {
				continue // cannot split between equal values
			}
			nl, nr := k+1, n-k-1
			if nl < b.opt.MinLeaf || nr < b.opt.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			gain := parentSSE - sse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (vk + vk1) / 2
				ok = true
			}
		}
	}
	if math.IsNaN(threshold) {
		return 0, 0, false
	}
	return feature, threshold, ok
}
