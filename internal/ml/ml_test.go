package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synth builds a dataset y = f(x) + noise over random features.
func synth(n, dim int, seed int64, noise float64, f func(x []float64) float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		d.Append(x, f(x)+rng.NormFloat64()*noise)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{}
	if err := d.Validate(); err == nil {
		t.Error("empty dataset should fail")
	}
	d.Append([]float64{1, 2}, 3)
	d.Append([]float64{1}, 4)
	if err := d.Validate(); err == nil {
		t.Error("ragged rows should fail")
	}
	d2 := &Dataset{X: [][]float64{{1}}, Y: nil}
	if err := d2.Validate(); err == nil {
		t.Error("length mismatch should fail")
	}
	d3 := &Dataset{FeatureNames: []string{"a", "b"}, X: [][]float64{{1}}, Y: []float64{1}}
	if err := d3.Validate(); err == nil {
		t.Error("feature-name mismatch should fail")
	}
}

func TestSplitHalves(t *testing.T) {
	d := synth(100, 2, 1, 0, func(x []float64) float64 { return x[0] })
	train, test, err := d.Split(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 50 || test.Len() != 50 {
		t.Fatalf("split = %d/%d, want 50/50 (paper methodology)", train.Len(), test.Len())
	}
	// Same seed reproduces the same split.
	train2, _, _ := d.Split(0.5, 7)
	for i := range train.X {
		if &train.X[i][0] != &train2.X[i][0] {
			t.Fatal("same seed should reproduce the same split")
		}
	}
}

func TestSplitValidation(t *testing.T) {
	d := synth(10, 1, 1, 0, func(x []float64) float64 { return x[0] })
	if _, _, err := d.Split(0, 1); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
	single := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, _, err := single.Split(0.5, 1); err == nil {
		t.Error("single sample cannot be split")
	}
}

func TestSplitExtremeFractionsStayNonEmpty(t *testing.T) {
	d := synth(10, 1, 2, 0, func(x []float64) float64 { return x[0] })
	train, test, err := d.Split(0.01, 3)
	if err != nil || train.Len() == 0 || test.Len() == 0 {
		t.Fatalf("tiny fraction: %d/%d (%v)", train.Len(), test.Len(), err)
	}
	train, test, err = d.Split(0.999, 3)
	if err != nil || train.Len() == 0 || test.Len() == 0 {
		t.Fatalf("huge fraction: %d/%d (%v)", train.Len(), test.Len(), err)
	}
}

func TestNormalizer(t *testing.T) {
	d := &Dataset{X: [][]float64{{0, 5, 7}, {10, 5, 9}}, Y: []float64{1, 2}}
	n, err := FitNormalizer(d)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Apply([]float64{5, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.5 {
		t.Errorf("out[0] = %g, want 0.5", out[0])
	}
	if out[1] != 0 { // constant column maps to 0
		t.Errorf("constant column = %g, want 0", out[1])
	}
	if out[2] != 0.5 {
		t.Errorf("out[2] = %g, want 0.5", out[2])
	}
	if _, err := n.Apply([]float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	nd, err := n.ApplyDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if nd.X[1][0] != 1 {
		t.Errorf("dataset normalization wrong: %v", nd.X)
	}
}

func TestTreeFitsConstant(t *testing.T) {
	d := synth(50, 2, 3, 0, func(x []float64) float64 { return 4.2 })
	tree, err := FitTree(d, d.Y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{1, 1}); math.Abs(got-4.2) > 1e-9 {
		t.Fatalf("constant prediction = %g, want 4.2", got)
	}
	if tree.NumNodes() != 1 {
		t.Fatalf("constant target should yield a single leaf, got %d nodes", tree.NumNodes())
	}
}

func TestTreeFitsStep(t *testing.T) {
	// A perfect single split exists; the tree must find it.
	d := &Dataset{}
	for i := 0; i < 40; i++ {
		x := float64(i)
		y := 0.0
		if x >= 20 {
			y = 10
		}
		d.Append([]float64{x}, y)
	}
	tree, err := FitTree(d, d.Y, TreeOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{5}); got != 0 {
		t.Fatalf("left prediction = %g, want 0", got)
	}
	if got := tree.Predict([]float64{30}); got != 10 {
		t.Fatalf("right prediction = %g, want 10", got)
	}
	if tree.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", tree.Depth())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	d := synth(300, 2, 4, 0.1, func(x []float64) float64 { return x[0]*x[1] + x[0] })
	for _, depth := range []int{1, 2, 4} {
		tree, err := FitTree(d, d.Y, TreeOptions{MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Depth(); got > depth {
			t.Fatalf("depth %d exceeds max %d", got, depth)
		}
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	d := synth(100, 1, 5, 0.5, func(x []float64) float64 { return x[0] })
	tree, err := FitTree(d, d.Y, TreeOptions{MaxDepth: 10, MinLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	// With min-leaf 30 of 100 samples, at most 3 leaves.
	leaves := 0
	for _, n := range tree.nodes {
		if n.feature < 0 {
			leaves++
		}
	}
	if leaves > 3 {
		t.Fatalf("%d leaves violate MinLeaf=30 over 100 samples", leaves)
	}
}

func TestTreeTargetsLengthChecked(t *testing.T) {
	d := synth(10, 1, 6, 0, func(x []float64) float64 { return x[0] })
	if _, err := FitTree(d, d.Y[:5], TreeOptions{}); err == nil {
		t.Fatal("mismatched targets should fail")
	}
}

func TestBoostingImprovesOverSingleTree(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * 3 * x[1] }
	train := synth(800, 2, 7, 0.05, f)
	test := synth(200, 2, 8, 0.05, f)

	tree, err := FitTree(train, train.Y, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	treeEval, err := Evaluate(treeRegressor{tree}, test)
	if err != nil {
		t.Fatal(err)
	}
	boost, err := FitBoostedTrees(train, BoostOptions{Rounds: 150, Tree: TreeOptions{MaxDepth: 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	boostEval, err := Evaluate(boost, test)
	if err != nil {
		t.Fatal(err)
	}
	if boostEval.RMSE >= treeEval.RMSE {
		t.Fatalf("boosting RMSE %g not better than single tree %g", boostEval.RMSE, treeEval.RMSE)
	}
}

type treeRegressor struct{ t *Tree }

func (r treeRegressor) Predict(x []float64) float64 { return r.t.Predict(x) }

func TestBoostingTrainLossDecreases(t *testing.T) {
	d := synth(400, 2, 9, 0.01, func(x []float64) float64 { return x[0] + 2*x[1] })
	b, err := FitBoostedTrees(d, BoostOptions{Rounds: 60, Subsample: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.TrainLoss) != 60 {
		t.Fatalf("TrainLoss has %d entries, want 60", len(b.TrainLoss))
	}
	// With full-sample fitting, squared loss is non-increasing.
	for i := 1; i < len(b.TrainLoss); i++ {
		if b.TrainLoss[i] > b.TrainLoss[i-1]+1e-9 {
			t.Fatalf("train loss increased at round %d: %g -> %g", i, b.TrainLoss[i-1], b.TrainLoss[i])
		}
	}
	if b.NumTrees() != 60 {
		t.Fatalf("NumTrees = %d, want 60", b.NumTrees())
	}
}

func TestBoostingDeterministicBySeed(t *testing.T) {
	d := synth(200, 2, 10, 0.1, func(x []float64) float64 { return x[0] * x[1] })
	b1, err := FitBoostedTrees(d, BoostOptions{Rounds: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := FitBoostedTrees(d, BoostOptions{Rounds: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{3, 4}
	if b1.Predict(probe) != b2.Predict(probe) {
		t.Fatal("same seed must reproduce the same ensemble")
	}
}

func TestBoostingOptionValidation(t *testing.T) {
	d := synth(20, 1, 11, 0, func(x []float64) float64 { return x[0] })
	if _, err := FitBoostedTrees(d, BoostOptions{Rounds: -1}); err == nil {
		t.Error("negative rounds should fail")
	}
	if _, err := FitBoostedTrees(d, BoostOptions{LearningRate: 2}); err == nil {
		t.Error("learning rate > 1 should fail")
	}
	if _, err := FitBoostedTrees(d, BoostOptions{Subsample: 1.5}); err == nil {
		t.Error("subsample > 1 should fail")
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	d := synth(500, 3, 12, 0.01, func(x []float64) float64 {
		return 2*x[0] - 3*x[1] + 0.5*x[2] + 7
	})
	m, err := FitLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 0.5, 7}
	for i, w := range want {
		if math.Abs(m.Weights[i]-w) > 0.05 {
			t.Fatalf("weight %d = %g, want ~%g", i, m.Weights[i], w)
		}
	}
}

func TestLinearRidgeHandlesDegenerate(t *testing.T) {
	// Duplicate feature columns make plain OLS singular; ridge fixes it.
	d := &Dataset{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		v := rng.Float64()
		d.Append([]float64{v, v}, 3*v)
	}
	if _, err := FitLinear(d, 0); err == nil {
		t.Log("plain OLS happened to solve the singular system (tolerated)")
	}
	m, err := FitLinear(d, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5, 0.5}); math.Abs(got-1.5) > 0.01 {
		t.Fatalf("ridge prediction = %g, want 1.5", got)
	}
}

func TestLinearNegativeRidgeRejected(t *testing.T) {
	d := synth(10, 1, 14, 0, func(x []float64) float64 { return x[0] })
	if _, err := FitLinear(d, -1); err == nil {
		t.Fatal("negative ridge should fail")
	}
}

func TestPoissonRecoversRates(t *testing.T) {
	// y = exp(0.3*x0 + 1): log-linear ground truth.
	d := &Dataset{}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 600; i++ {
		x := rng.Float64() * 5
		mu := math.Exp(0.3*x + 1)
		d.Append([]float64{x}, mu*(1+rng.NormFloat64()*0.02))
	}
	m, err := FitPoisson(d, PoissonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-0.3) > 0.05 || math.Abs(m.Weights[1]-1) > 0.1 {
		t.Fatalf("weights = %v, want ~[0.3, 1]", m.Weights)
	}
}

func TestPoissonRejectsNonPositive(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 0}}
	if _, err := FitPoisson(d, PoissonOptions{}); err == nil {
		t.Fatal("non-positive target should fail")
	}
}

func TestMetricsEquations(t *testing.T) {
	// Equation 5/6 on a worked example.
	if got := AbsoluteError(2.0, 1.5); got != 0.5 {
		t.Fatalf("absolute error = %g, want 0.5", got)
	}
	if got := PercentError(2.0, 1.5); got != 25 {
		t.Fatalf("percent error = %g, want 25", got)
	}
	if !math.IsInf(PercentError(0, 1), 1) {
		t.Fatal("percent error with zero measurement should be +Inf")
	}
}

func TestEvaluate(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{1, 2, 3}}
	perfect := &LinearModel{Weights: []float64{1, 0}}
	ev, err := Evaluate(perfect, d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MeanAbsoluteError != 0 || ev.RMSE != 0 || ev.R2 != 1 || ev.N != 3 {
		t.Fatalf("perfect model evaluation wrong: %+v", ev)
	}
	if len(ev.AbsErrors) != 3 {
		t.Fatalf("AbsErrors length = %d", len(ev.AbsErrors))
	}
}

func TestEvaluateRejectsNonFinite(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	bad := badRegressor{}
	if _, err := Evaluate(bad, d); err == nil {
		t.Fatal("non-finite prediction should fail evaluation")
	}
}

type badRegressor struct{}

func (badRegressor) Predict(x []float64) float64 { return math.NaN() }

func TestBoostedBeatsLinearOnNonlinearData(t *testing.T) {
	// The paper selected BDTR because it out-predicted linear/Poisson;
	// verify that ordering on a nonlinear performance-like surface
	// T = a/x + b (execution time vs thread count).
	f := func(x []float64) float64 { return 50/x[0] + 3 + 0.2*x[1] }
	gen := func(seed int64, n int) *Dataset {
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{}
		for i := 0; i < n; i++ {
			x := []float64{float64(rng.Intn(47) + 1), rng.Float64() * 3}
			d.Append(x, f(x)*(1+rng.NormFloat64()*0.02))
		}
		return d
	}
	train, test := gen(16, 1000), gen(17, 300)
	boost, err := FitBoostedTrees(train, BoostOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	linear, err := FitLinear(train, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := FitPoisson(train, PoissonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evB, err := Evaluate(boost, test)
	if err != nil {
		t.Fatal(err)
	}
	evL, err := Evaluate(linear, test)
	if err != nil {
		t.Fatal(err)
	}
	evP, err := Evaluate(poisson, test)
	if err != nil {
		t.Fatal(err)
	}
	if evB.MeanPercentError >= evL.MeanPercentError {
		t.Fatalf("BDTR (%.2f%%) should beat linear (%.2f%%)", evB.MeanPercentError, evL.MeanPercentError)
	}
	if evB.MeanPercentError >= evP.MeanPercentError {
		t.Fatalf("BDTR (%.2f%%) should beat poisson (%.2f%%)", evB.MeanPercentError, evP.MeanPercentError)
	}
}
