package ml

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestCrossValidate(t *testing.T) {
	d := synth(300, 2, 21, 0.05, func(x []float64) float64 { return 3*x[0] + x[1] })
	evals, err := CrossValidate(d, 5, 1, func(train *Dataset) (Regressor, error) {
		return FitLinear(train, 1e-9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 5 {
		t.Fatalf("folds = %d, want 5", len(evals))
	}
	total := 0
	for _, e := range evals {
		total += e.N
		if e.MeanPercentError > 5 {
			t.Errorf("fold percent error %.2f%% too high for a linear ground truth", e.MeanPercentError)
		}
	}
	if total != d.Len() {
		t.Fatalf("folds cover %d samples, want %d", total, d.Len())
	}
	summary, err := SummarizeCrossValidation(evals)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Folds != 5 || summary.MeanPercentError <= 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.WorstFoldPercentError < summary.MeanPercentError {
		t.Fatal("worst fold cannot beat the mean")
	}
}

func TestCrossValidateValidation(t *testing.T) {
	d := synth(10, 1, 22, 0, func(x []float64) float64 { return x[0] })
	trainer := func(train *Dataset) (Regressor, error) { return FitLinear(train, 0) }
	if _, err := CrossValidate(d, 1, 1, trainer); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := CrossValidate(d, 20, 1, trainer); err == nil {
		t.Error("more folds than samples should fail")
	}
	if _, err := CrossValidate(d, 2, 1, nil); err == nil {
		t.Error("nil trainer should fail")
	}
	if _, err := SummarizeCrossValidation(nil); err == nil {
		t.Error("empty evals should fail")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := synth(100, 2, 23, 0.1, func(x []float64) float64 { return x[0] * x[1] })
	trainer := func(train *Dataset) (Regressor, error) {
		return FitBoostedTrees(train, BoostOptions{Rounds: 20, Seed: 1})
	}
	a, err := CrossValidate(d, 4, 9, trainer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(d, 4, 9, trainer)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanPercentError != b[i].MeanPercentError {
			t.Fatal("same seed must reproduce folds")
		}
	}
}

func TestFeatureImportanceIdentifiesRelevantFeature(t *testing.T) {
	// y depends strongly on x0, weakly on x1, not at all on x2.
	rng := rand.New(rand.NewSource(31))
	d := &Dataset{}
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		d.Append(x, 10*x[0]+0.5*x[1])
	}
	m, err := FitBoostedTrees(d, BoostOptions{Rounds: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FeatureImportance(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] <= imp[1] || imp[1] <= imp[2] {
		t.Fatalf("importance ordering wrong: %v (want x0 > x1 > x2)", imp)
	}
	if imp[2] > imp[0]*0.05 {
		t.Errorf("irrelevant feature importance %g too large vs %g", imp[2], imp[0])
	}
}

func TestFeatureImportanceValidation(t *testing.T) {
	d := synth(10, 1, 32, 0, func(x []float64) float64 { return x[0] })
	if _, err := FeatureImportance(nil, d); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := FeatureImportance(&LinearModel{Weights: []float64{1, 0}}, &Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestBoostedTreesSaveLoadRoundTrip(t *testing.T) {
	d := synth(400, 3, 33, 0.05, func(x []float64) float64 { return x[0]*x[1] - x[2] })
	orig, err := FitBoostedTrees(d, BoostOptions{Rounds: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBoostedTrees(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != orig.NumTrees() {
		t.Fatalf("tree count %d != %d", loaded.NumTrees(), orig.NumTrees())
	}
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		a, b := orig.Predict(x), loaded.Predict(x)
		if a != b {
			t.Fatalf("prediction diverges after reload: %g vs %g", a, b)
		}
	}
}

func TestLoadBoostedTreesRejectsGarbage(t *testing.T) {
	if _, err := LoadBoostedTrees(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage input should fail")
	}
	// A structurally broken payload: learning rate out of range.
	d := synth(50, 1, 35, 0, func(x []float64) float64 { return x[0] })
	m, err := FitBoostedTrees(d, BoostOptions{Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBoostedTrees(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	good := &Tree{nodes: []treeNode{{feature: 0, threshold: 1, left: 1, right: 2}, {feature: -1}, {feature: -1}}}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	outOfRange := &Tree{nodes: []treeNode{{feature: 0, left: 5, right: 1}, {feature: -1}}}
	if err := outOfRange.validate(); err == nil {
		t.Error("out-of-range child should fail")
	}
	selfLoop := &Tree{nodes: []treeNode{{feature: 0, left: 0, right: 0}}}
	if err := selfLoop.validate(); err == nil {
		t.Error("self-loop should fail")
	}
}

func TestCrossValidationOfPaperModelShape(t *testing.T) {
	// Sanity: BDTR cross-validated on a performance-like surface keeps a
	// stable error across folds (low std deviation).
	f := func(x []float64) float64 { return 100/x[0] + 0.01*x[1] }
	rng := rand.New(rand.NewSource(36))
	d := &Dataset{}
	for i := 0; i < 500; i++ {
		x := []float64{float64(rng.Intn(48) + 1), rng.Float64() * 3000}
		d.Append(x, f(x)*(1+rng.NormFloat64()*0.03))
	}
	evals, err := CrossValidate(d, 4, 2, func(train *Dataset) (Regressor, error) {
		return FitBoostedTrees(train, BoostOptions{Rounds: 60, Seed: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SummarizeCrossValidation(evals)
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDevPercentError > s.MeanPercentError {
		t.Fatalf("fold errors unstable: mean %.2f%%, std %.2f%%", s.MeanPercentError, s.StdDevPercentError)
	}
	if math.IsNaN(s.StdDevPercentError) {
		t.Fatal("NaN in summary")
	}
}
