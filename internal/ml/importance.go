package ml

import "fmt"

// FeatureImportance computes permutation importance: the increase in mean
// squared error when one feature's values are cyclically shifted across
// the evaluation set, breaking its relationship with the target while
// preserving its marginal distribution. Larger values mean the model
// relies more on that feature.
//
// For the performance-prediction models this answers the paper-adjacent
// question of which configuration parameters (threads, size, affinity)
// the learned model actually uses.
func FeatureImportance(m Regressor, d *Dataset) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ml: nil regressor")
	}
	n := d.Len()
	baseMSE := 0.0
	for i, x := range d.X {
		e := d.Y[i] - m.Predict(x)
		baseMSE += e * e
	}
	baseMSE /= float64(n)

	dim := d.Dim()
	shift := n/2 + 1 // cyclic shift decorrelates feature from target
	importances := make([]float64, dim)
	probe := make([]float64, dim)
	for f := 0; f < dim; f++ {
		mse := 0.0
		for i, x := range d.X {
			copy(probe, x)
			probe[f] = d.X[(i+shift)%n][f]
			e := d.Y[i] - m.Predict(probe)
			mse += e * e
		}
		mse /= float64(n)
		importances[f] = mse - baseMSE
	}
	return importances, nil
}
