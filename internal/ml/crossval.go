package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// CrossValidate runs k-fold cross-validation of a model family over the
// dataset: the data is shuffled once (seeded), split into k folds, and
// the trainer is fitted k times on k-1 folds and evaluated on the
// held-out fold. It returns the per-fold evaluations.
//
// The paper uses a single half/half split ("standard validation
// methodology"); cross-validation is the stronger check that the reported
// accuracy is not an artifact of one particular split.
func CrossValidate(d *Dataset, k int, seed int64, train func(*Dataset) (Regressor, error)) ([]Evaluation, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("ml: cross-validation needs k >= 2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d samples cannot form %d folds", d.Len(), k)
	}
	if train == nil {
		return nil, fmt.Errorf("ml: nil trainer")
	}
	perm := rand.New(rand.NewSource(seed)).Perm(d.Len())
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	var evals []Evaluation
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		model, err := train(d.Subset(trainIdx))
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		ev, err := Evaluate(model, d.Subset(folds[f]))
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		evals = append(evals, ev)
	}
	return evals, nil
}

// CrossValidationSummary averages per-fold accuracy.
type CrossValidationSummary struct {
	Folds                 int
	MeanPercentError      float64
	StdDevPercentError    float64
	MeanAbsoluteError     float64
	WorstFoldPercentError float64
}

// SummarizeCrossValidation aggregates fold evaluations.
func SummarizeCrossValidation(evals []Evaluation) (CrossValidationSummary, error) {
	if len(evals) == 0 {
		return CrossValidationSummary{}, fmt.Errorf("ml: no fold evaluations")
	}
	s := CrossValidationSummary{Folds: len(evals)}
	for _, e := range evals {
		s.MeanPercentError += e.MeanPercentError
		s.MeanAbsoluteError += e.MeanAbsoluteError
		if e.MeanPercentError > s.WorstFoldPercentError {
			s.WorstFoldPercentError = e.MeanPercentError
		}
	}
	n := float64(len(evals))
	s.MeanPercentError /= n
	s.MeanAbsoluteError /= n
	for _, e := range evals {
		d := e.MeanPercentError - s.MeanPercentError
		s.StdDevPercentError += d * d
	}
	s.StdDevPercentError = math.Sqrt(s.StdDevPercentError / n)
	return s, nil
}
