package ml

import (
	"fmt"
	"math"
)

// LinearModel is ordinary least squares with optional ridge damping, one
// of the regressors the paper evaluated before settling on boosted trees.
type LinearModel struct {
	// Weights has one coefficient per feature plus a trailing intercept.
	Weights []float64
}

// Predict implements Regressor.
func (m *LinearModel) Predict(x []float64) float64 {
	out := m.Weights[len(m.Weights)-1]
	for j, w := range m.Weights[:len(m.Weights)-1] {
		out += w * x[j]
	}
	return out
}

// FitLinear solves min ||Xw - y||^2 + ridge*||w||^2 via the normal
// equations with Cholesky factorization. ridge must be non-negative; a
// small positive value keeps degenerate designs solvable.
func FitLinear(d *Dataset, ridge float64) (*LinearModel, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if ridge < 0 {
		return nil, fmt.Errorf("ml: negative ridge %g", ridge)
	}
	dim := d.Dim() + 1 // + intercept
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for i, x := range d.X {
		copy(row, x)
		row[dim-1] = 1
		for a := 0; a < dim; a++ {
			for b := a; b < dim; b++ {
				ata[a][b] += row[a] * row[b]
			}
			atb[a] += row[a] * d.Y[i]
		}
	}
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			ata[a][b] = ata[b][a]
		}
		if a < dim-1 { // do not dampen the intercept
			ata[a][a] += ridge
		}
	}
	w, err := solveCholesky(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("ml: linear fit: %w", err)
	}
	return &LinearModel{Weights: w}, nil
}

// solveCholesky solves the symmetric positive-definite system a*x = b,
// destroying its inputs. It returns an error when the matrix is not
// positive definite (within tolerance).
func solveCholesky(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Decompose a = L L^T in place (lower triangle).
	for j := 0; j < n; j++ {
		sum := a[j][j]
		for k := 0; k < j; k++ {
			sum -= a[j][k] * a[j][k]
		}
		if sum <= 1e-12 {
			return nil, fmt.Errorf("matrix not positive definite at pivot %d (%g)", j, sum)
		}
		a[j][j] = math.Sqrt(sum)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= a[i][k] * a[j][k]
			}
			a[i][j] = s / a[j][j]
		}
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i][k] * y[k]
		}
		y[i] = s / a[i][i]
	}
	// Back substitution: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= a[k][i] * x[k]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
