package ml

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence: trained ensembles can be saved and reloaded, the
// "off-line learning" usage the paper describes (train once, reuse the
// predictor for new inputs without re-measuring).

// persistedNode mirrors treeNode with exported fields for encoding.
type persistedNode struct {
	Feature     int
	Threshold   float64
	Left, Right int32
	Value       float64
}

// persistedBoosted is the serialized form of BoostedTrees.
type persistedBoosted struct {
	Base         float64
	LearningRate float64
	Trees        [][]persistedNode
}

// Save writes the ensemble to w in gob encoding.
func (b *BoostedTrees) Save(w io.Writer) error {
	p := persistedBoosted{Base: b.base, LearningRate: b.learningRate}
	for _, t := range b.trees {
		nodes := make([]persistedNode, len(t.nodes))
		for i, n := range t.nodes {
			nodes[i] = persistedNode{
				Feature:   n.feature,
				Threshold: n.threshold,
				Left:      n.left,
				Right:     n.right,
				Value:     n.value,
			}
		}
		p.Trees = append(p.Trees, nodes)
	}
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("ml: saving boosted trees: %w", err)
	}
	return nil
}

// LoadBoostedTrees reads an ensemble previously written by Save.
func LoadBoostedTrees(r io.Reader) (*BoostedTrees, error) {
	var p persistedBoosted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ml: loading boosted trees: %w", err)
	}
	if p.LearningRate <= 0 || p.LearningRate > 1 {
		return nil, fmt.Errorf("ml: loaded learning rate %g outside (0,1]", p.LearningRate)
	}
	b := &BoostedTrees{base: p.Base, learningRate: p.LearningRate}
	for i, nodes := range p.Trees {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("ml: loaded tree %d is empty", i)
		}
		t := &Tree{nodes: make([]treeNode, len(nodes))}
		for j, n := range nodes {
			t.nodes[j] = treeNode{
				feature:   n.Feature,
				threshold: n.Threshold,
				left:      n.Left,
				right:     n.Right,
				value:     n.Value,
			}
		}
		if err := t.validate(); err != nil {
			return nil, fmt.Errorf("ml: loaded tree %d: %w", i, err)
		}
		b.trees = append(b.trees, t)
	}
	return b, nil
}

// validate checks structural sanity of a deserialized tree: child indices
// in range and leaves marked consistently.
func (t *Tree) validate() error {
	n := int32(len(t.nodes))
	for i, node := range t.nodes {
		if node.feature < 0 {
			continue // leaf
		}
		if node.left < 0 || node.left >= n || node.right < 0 || node.right >= n {
			return fmt.Errorf("node %d has out-of-range children (%d, %d)", i, node.left, node.right)
		}
		if node.left == int32(i) || node.right == int32(i) {
			return fmt.Errorf("node %d is its own child", i)
		}
	}
	return nil
}
