package ml

import (
	"fmt"
	"math/rand"
)

// Regressor is a fitted model predicting a scalar from a feature vector.
type Regressor interface {
	Predict(x []float64) float64
}

// BoostOptions configures Boosted Decision Tree Regression (least-squares
// gradient boosting of CART trees, the algorithm of Section III-B).
type BoostOptions struct {
	// Rounds is the number of boosting stages (trees). Zero selects 300.
	Rounds int
	// LearningRate is the shrinkage nu applied to every tree. Zero
	// selects 0.1.
	LearningRate float64
	// Tree configures the base learners. Zero values select depth 5 /
	// min-leaf 5 (boosting prefers slightly stronger leaves than a lone
	// CART).
	Tree TreeOptions
	// Subsample is the per-round row-sampling fraction (stochastic
	// gradient boosting). Zero selects 0.8; 1 disables subsampling.
	Subsample float64
	// Seed drives subsampling.
	Seed int64
}

func (o BoostOptions) withDefaults() BoostOptions {
	if o.Rounds == 0 {
		o.Rounds = 300
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.Tree.MaxDepth == 0 {
		o.Tree.MaxDepth = 5
	}
	if o.Tree.MinLeaf == 0 {
		o.Tree.MinLeaf = 5
	}
	if o.Subsample == 0 {
		o.Subsample = 0.8
	}
	return o
}

// BoostedTrees is a fitted boosted regression-tree ensemble.
type BoostedTrees struct {
	base         float64
	learningRate float64
	trees        []*Tree
	// TrainLoss records the mean squared error on the training set after
	// every round (diagnostics and convergence tests).
	TrainLoss []float64
}

// NumTrees returns the number of boosting stages fitted.
func (b *BoostedTrees) NumTrees() int { return len(b.trees) }

// Predict implements Regressor.
func (b *BoostedTrees) Predict(x []float64) float64 {
	out := b.base
	for _, t := range b.trees {
		out += b.learningRate * t.Predict(x)
	}
	return out
}

// FitBoostedTrees trains Boosted Decision Tree Regression on d with
// least-squares loss:
//
//	F_0(x)   = mean(y)
//	r_i      = y_i - F_{m-1}(x_i)            (negative gradient)
//	F_m(x)   = F_{m-1}(x) + nu * tree_m(x)   (tree_m fitted to r)
func FitBoostedTrees(d *Dataset, opt BoostOptions) (*BoostedTrees, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if opt.Rounds < 1 {
		return nil, fmt.Errorf("ml: boosting rounds must be positive, got %d", opt.Rounds)
	}
	if opt.LearningRate <= 0 || opt.LearningRate > 1 {
		return nil, fmt.Errorf("ml: learning rate %g outside (0,1]", opt.LearningRate)
	}
	if opt.Subsample <= 0 || opt.Subsample > 1 {
		return nil, fmt.Errorf("ml: subsample fraction %g outside (0,1]", opt.Subsample)
	}

	n := d.Len()
	base := 0.0
	for _, y := range d.Y {
		base += y
	}
	base /= float64(n)

	model := &BoostedTrees{base: base, learningRate: opt.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	residual := make([]float64, n)
	rng := rand.New(rand.NewSource(opt.Seed))

	for round := 0; round < opt.Rounds; round++ {
		for i := range residual {
			residual[i] = d.Y[i] - pred[i]
		}
		fitData := d
		fitResidual := residual
		if opt.Subsample < 1 {
			m := int(float64(n) * opt.Subsample)
			if m < 1 {
				m = 1
			}
			idx := rng.Perm(n)[:m]
			fitData = d.Subset(idx)
			fitResidual = make([]float64, m)
			for k, i := range idx {
				fitResidual[k] = residual[i]
			}
		}
		tree, err := FitTree(fitData, fitResidual, opt.Tree)
		if err != nil {
			return nil, fmt.Errorf("ml: boosting round %d: %w", round, err)
		}
		model.trees = append(model.trees, tree)
		mse := 0.0
		for i, row := range d.X {
			pred[i] += opt.LearningRate * tree.Predict(row)
			e := d.Y[i] - pred[i]
			mse += e * e
		}
		model.TrainLoss = append(model.TrainLoss, mse/float64(n))
	}
	return model, nil
}
