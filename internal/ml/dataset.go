// Package ml implements the supervised machine-learning stack of the
// paper's performance-prediction component (Section III-B): Boosted
// Decision Tree Regression (gradient-boosted CART regression trees) plus
// the two alternatives the authors considered and rejected — Linear
// Regression and Poisson Regression — together with data normalization,
// train/test splitting, and the prediction-accuracy metrics of Equations
// 5 and 6 (absolute error and percent error).
package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a dense supervised-regression dataset.
type Dataset struct {
	// FeatureNames labels the columns (len = feature dimension).
	FeatureNames []string
	// X holds one row per sample.
	X [][]float64
	// Y holds one target per sample.
	Y []float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return len(d.FeatureNames)
	}
	return len(d.X[0])
}

// Append adds one sample.
func (d *Dataset) Append(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Validate checks rectangular shape and matching lengths.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d targets", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	dim := len(d.X[0])
	if dim == 0 {
		return fmt.Errorf("ml: zero-dimensional features")
	}
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != dim {
		return fmt.Errorf("ml: %d feature names for %d features", len(d.FeatureNames), dim)
	}
	return nil
}

// Subset returns a view-dataset with the given sample indices (rows are
// shared, not copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	sub := &Dataset{FeatureNames: d.FeatureNames}
	for _, i := range indices {
		sub.Append(d.X[i], d.Y[i])
	}
	return sub
}

// Split partitions the dataset into train and test halves using a seeded
// shuffle, reproducing the paper's validation methodology ("half of the
// experiments for training and the other half for evaluation").
// trainFraction must lie in (0,1); both halves are guaranteed non-empty
// for datasets with at least two samples.
func (d *Dataset) Split(trainFraction float64, seed int64) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("ml: train fraction %g outside (0,1)", trainFraction)
	}
	if d.Len() < 2 {
		return nil, nil, fmt.Errorf("ml: need at least 2 samples to split, have %d", d.Len())
	}
	perm := rand.New(rand.NewSource(seed)).Perm(d.Len())
	nTrain := int(float64(d.Len()) * trainFraction)
	if nTrain == 0 {
		nTrain = 1
	}
	if nTrain == d.Len() {
		nTrain = d.Len() - 1
	}
	return d.Subset(perm[:nTrain]), d.Subset(perm[nTrain:]), nil
}
