package ml

import (
	"fmt"
	"math"
)

// AbsoluteError implements the paper's Equation 5:
// |T_measured - T_predicted|.
func AbsoluteError(measured, predicted float64) float64 {
	return math.Abs(measured - predicted)
}

// PercentError implements the paper's Equation 6:
// 100 * absolute error / T_measured.
func PercentError(measured, predicted float64) float64 {
	if measured == 0 {
		return math.Inf(1)
	}
	return 100 * AbsoluteError(measured, predicted) / math.Abs(measured)
}

// Evaluation aggregates prediction accuracy over a test set.
type Evaluation struct {
	// N is the number of evaluated samples.
	N int
	// MeanAbsoluteError and MeanPercentError average Equations 5 and 6.
	MeanAbsoluteError, MeanPercentError float64
	// RMSE is the root mean squared error.
	RMSE float64
	// R2 is the coefficient of determination.
	R2 float64
	// AbsErrors holds the per-sample absolute errors (histogram input).
	AbsErrors []float64
}

// Evaluate runs the regressor over the dataset and aggregates accuracy.
func Evaluate(m Regressor, d *Dataset) (Evaluation, error) {
	if err := d.Validate(); err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{N: d.Len()}
	meanY := 0.0
	for _, y := range d.Y {
		meanY += y
	}
	meanY /= float64(d.Len())

	var sse, sst float64
	for i, x := range d.X {
		pred := m.Predict(x)
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			return Evaluation{}, fmt.Errorf("ml: regressor produced non-finite prediction for sample %d", i)
		}
		abs := AbsoluteError(d.Y[i], pred)
		ev.AbsErrors = append(ev.AbsErrors, abs)
		ev.MeanAbsoluteError += abs
		ev.MeanPercentError += PercentError(d.Y[i], pred)
		sse += (d.Y[i] - pred) * (d.Y[i] - pred)
		sst += (d.Y[i] - meanY) * (d.Y[i] - meanY)
	}
	n := float64(d.Len())
	ev.MeanAbsoluteError /= n
	ev.MeanPercentError /= n
	ev.RMSE = math.Sqrt(sse / n)
	if sst > 0 {
		ev.R2 = 1 - sse/sst
	}
	return ev, nil
}
