// Package dna provides the DNA-sequence substrate of the reproduction:
// descriptors for the paper's four GenBank genomes (human, mouse, cat,
// dog), a deterministic synthetic sequence generator that replaces the
// multi-gigabyte reference files, FASTA input/output, and the IUPAC
// nucleotide alphabet used to express motifs.
//
// The paper analyzes real DNA sequences of human (3.17 GB), mouse
// (2.77 GB), cat (2.43 GB) and dog (2.38 GB) extracted from NCBI GenBank.
// Those files are not redistributable here; Genome records their sizes and
// composition parameters so the performance model can reason about
// paper-scale inputs, while Generate produces arbitrary amounts of
// composition-matched synthetic sequence for the real matching engine.
package dna

import (
	"fmt"
	"strings"
)

// Base codes. Sequences handled by the matching engine are encoded with
// two bits per base; EncodeByte maps ASCII to these codes.
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
	// AlphabetSize is the number of concrete nucleotide codes.
	AlphabetSize = 4
)

// Letters maps base codes back to ASCII.
var Letters = [AlphabetSize]byte{'A', 'C', 'G', 'T'}

// EncodeByte maps an ASCII nucleotide (either case) to its 2-bit code.
// It returns (code, true) for A/C/G/T and (0, false) otherwise (including
// the ambiguity code N, which the matching pipeline treats as a wildcard
// position to be skipped or expanded by the caller).
func EncodeByte(b byte) (uint8, bool) {
	switch b {
	case 'A', 'a':
		return BaseA, true
	case 'C', 'c':
		return BaseC, true
	case 'G', 'g':
		return BaseG, true
	case 'T', 't':
		return BaseT, true
	default:
		return 0, false
	}
}

// IUPAC maps every IUPAC nucleotide ambiguity code to the set of concrete
// bases it denotes. Motif patterns may use these codes; the automata
// package expands them into character classes.
var IUPAC = map[byte][]uint8{
	'A': {BaseA},
	'C': {BaseC},
	'G': {BaseG},
	'T': {BaseT},
	'U': {BaseT},
	'R': {BaseA, BaseG},
	'Y': {BaseC, BaseT},
	'S': {BaseC, BaseG},
	'W': {BaseA, BaseT},
	'K': {BaseG, BaseT},
	'M': {BaseA, BaseC},
	'B': {BaseC, BaseG, BaseT},
	'D': {BaseA, BaseG, BaseT},
	'H': {BaseA, BaseC, BaseT},
	'V': {BaseA, BaseC, BaseG},
	'N': {BaseA, BaseC, BaseG, BaseT},
}

// ExpandIUPAC returns the concrete base set for an IUPAC code (either
// case), or an error for a non-IUPAC byte.
func ExpandIUPAC(b byte) ([]uint8, error) {
	up := b
	if up >= 'a' && up <= 'z' {
		up -= 'a' - 'A'
	}
	set, ok := IUPAC[up]
	if !ok {
		return nil, fmt.Errorf("dna: %q is not an IUPAC nucleotide code", string(b))
	}
	return set, nil
}

// iupacComplement maps every IUPAC code to its complement (the code
// denoting the complements of the bases it denotes).
var iupacComplement = map[byte]byte{
	'A': 'T', 'T': 'A', 'U': 'A', 'C': 'G', 'G': 'C',
	'R': 'Y', 'Y': 'R', 'S': 'S', 'W': 'W', 'K': 'M', 'M': 'K',
	'B': 'V', 'V': 'B', 'D': 'H', 'H': 'D', 'N': 'N',
}

// Complement returns the IUPAC complement of a nucleotide code (either
// case; the result is upper case). It fails for non-IUPAC bytes.
func Complement(b byte) (byte, error) {
	up := b
	if up >= 'a' && up <= 'z' {
		up -= 'a' - 'A'
	}
	c, ok := iupacComplement[up]
	if !ok {
		return 0, fmt.Errorf("dna: %q has no complement (not an IUPAC code)", string(b))
	}
	return c, nil
}

// ReverseComplementPattern returns the reverse complement of a motif
// pattern (IUPAC codes allowed): the pattern matching the other DNA
// strand.
func ReverseComplementPattern(pattern string) (string, error) {
	out := make([]byte, len(pattern))
	for i := 0; i < len(pattern); i++ {
		c, err := Complement(pattern[i])
		if err != nil {
			return "", err
		}
		out[len(pattern)-1-i] = c
	}
	return string(out), nil
}

// ReverseComplement returns the reverse complement of a concrete ACGT
// sequence; bytes outside IUPAC map to 'N'.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i := 0; i < len(seq); i++ {
		c, err := Complement(seq[i])
		if err != nil {
			c = 'N'
		}
		out[len(seq)-1-i] = c
	}
	return out
}

// Genome describes one of the evaluation inputs.
type Genome struct {
	// Name is the organism, e.g. "human".
	Name string
	// SizeMB is the sequence size in megabytes (1 MB = 2^20 bytes, one
	// byte per base), matching the paper's reported gigabyte sizes.
	SizeMB float64
	// GC is the genome's G+C fraction, used by the synthetic generator.
	GC float64
	// Complexity is the matching-cost multiplier relative to human (1.0);
	// it feeds perf.Traits.
	Complexity float64
}

// String implements fmt.Stringer.
func (g Genome) String() string {
	return fmt.Sprintf("%s (%.0f MB)", g.Name, g.SizeMB)
}

// The paper's four evaluation genomes (Section IV-A). Sizes convert the
// reported gigabytes at 1 GB = 1024 MB. GC contents are the published
// genome-wide values; complexity factors are small perturbations that give
// each genome a distinct performance signature, standing in for
// composition-dependent matching cost.
var (
	Human = Genome{Name: "human", SizeMB: 3.17 * 1024, GC: 0.41, Complexity: 1.00}
	Mouse = Genome{Name: "mouse", SizeMB: 2.77 * 1024, GC: 0.42, Complexity: 0.98}
	Cat   = Genome{Name: "cat", SizeMB: 2.43 * 1024, GC: 0.42, Complexity: 1.03}
	Dog   = Genome{Name: "dog", SizeMB: 2.38 * 1024, GC: 0.41, Complexity: 1.01}
)

// Genomes returns the four evaluation genomes in the paper's order.
func Genomes() []Genome {
	return []Genome{Human, Mouse, Cat, Dog}
}

// GenomeNames lists the evaluation genomes' names in the paper's order.
func GenomeNames() []string {
	gs := Genomes()
	names := make([]string, len(gs))
	for i, g := range gs {
		names[i] = g.Name
	}
	return names
}

// GenomeByName looks up one of the evaluation genomes by case-insensitive
// name. Unknown names fail with the full list of valid names, derived
// from the genome set itself so the error can never go stale.
func GenomeByName(name string) (Genome, error) {
	for _, g := range Genomes() {
		if strings.EqualFold(g.Name, name) {
			return g, nil
		}
	}
	return Genome{}, fmt.Errorf("dna: unknown genome %q (valid: %s)", name, strings.Join(GenomeNames(), ", "))
}

// Motif is a named nucleotide pattern to search for. Pattern may contain
// IUPAC ambiguity codes.
type Motif struct {
	Name    string
	Pattern string
}

// Validate checks that the motif pattern is non-empty and uses only IUPAC
// codes.
func (m Motif) Validate() error {
	if m.Pattern == "" {
		return fmt.Errorf("dna: motif %q has an empty pattern", m.Name)
	}
	for i := 0; i < len(m.Pattern); i++ {
		if _, err := ExpandIUPAC(m.Pattern[i]); err != nil {
			return fmt.Errorf("dna: motif %q: position %d: %v", m.Name, i, err)
		}
	}
	return nil
}

// DefaultMotifs returns a realistic motif set for the DNA-analysis
// workload: well-known promoter elements and restriction-enzyme
// recognition sites.
func DefaultMotifs() []Motif {
	return []Motif{
		{Name: "TATA-box", Pattern: "TATAAA"},
		{Name: "CAAT-box", Pattern: "GGCCAATCT"},
		{Name: "EcoRI", Pattern: "GAATTC"},
		{Name: "BamHI", Pattern: "GGATCC"},
		{Name: "HindIII", Pattern: "AAGCTT"},
		{Name: "NotI", Pattern: "GCGGCCGC"},
		{Name: "SpliceDonor", Pattern: "GTRAGT"}, // R = A|G
		{Name: "KozakCore", Pattern: "GCCRCCATGG"},
	}
}
