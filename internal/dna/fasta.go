package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// fastaLineWidth is the sequence line width used when writing FASTA,
// matching GenBank's conventional 70-column layout.
const fastaLineWidth = 70

// WriteFASTA writes one FASTA record with the given header (without the
// leading '>') and sequence to w.
func WriteFASTA(w io.Writer, header string, seq []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, ">%s\n", header); err != nil {
		return fmt.Errorf("dna: writing FASTA header: %w", err)
	}
	for off := 0; off < len(seq); off += fastaLineWidth {
		end := off + fastaLineWidth
		if end > len(seq) {
			end = len(seq)
		}
		if _, err := bw.Write(seq[off:end]); err != nil {
			return fmt.Errorf("dna: writing FASTA sequence: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dna: writing FASTA sequence: %w", err)
		}
	}
	return bw.Flush()
}

// FASTARecord is one parsed FASTA entry.
type FASTARecord struct {
	Header string
	Seq    []byte
}

// ReadFASTA parses all records from r. Sequence lines are concatenated
// with whitespace stripped; bytes other than IUPAC codes cause an error.
func ReadFASTA(r io.Reader) ([]FASTARecord, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var records []FASTARecord
	var cur *FASTARecord
	line := 0
	for scanner.Scan() {
		line++
		text := bytes.TrimSpace(scanner.Bytes())
		if len(text) == 0 {
			continue
		}
		if text[0] == '>' {
			records = append(records, FASTARecord{Header: string(text[1:])})
			cur = &records[len(records)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: line %d: sequence data before any FASTA header", line)
		}
		for _, b := range text {
			if _, err := ExpandIUPAC(b); err != nil {
				return nil, fmt.Errorf("dna: line %d: %v", line, err)
			}
		}
		cur.Seq = append(cur.Seq, text...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dna: reading FASTA: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dna: no FASTA records found")
	}
	return records, nil
}
