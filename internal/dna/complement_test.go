package dna

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestComplement(t *testing.T) {
	cases := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'R': 'Y', 'N': 'N', 'a': 'T', 'U': 'A'}
	for in, want := range cases {
		got, err := Complement(in)
		if err != nil || got != want {
			t.Errorf("Complement(%q) = %q, %v; want %q", string(in), string(got), err, string(want))
		}
	}
	if _, err := Complement('X'); err == nil {
		t.Error("X has no complement")
	}
}

func TestReverseComplementPattern(t *testing.T) {
	cases := map[string]string{
		"TATAAA": "TTTATA",
		"GAATTC": "GAATTC", // palindrome
		"GTRAGT": "ACTYAC",
		"A":      "T",
	}
	for in, want := range cases {
		got, err := ReverseComplementPattern(in)
		if err != nil || got != want {
			t.Errorf("rc(%s) = %s, %v; want %s", in, got, err, want)
		}
	}
	if _, err := ReverseComplementPattern("AXC"); err == nil {
		t.Error("non-IUPAC should fail")
	}
}

func TestReverseComplementSequence(t *testing.T) {
	got := ReverseComplement([]byte("ACGT"))
	if string(got) != "ACGT" { // ACGT is palindromic
		t.Fatalf("rc(ACGT) = %s", got)
	}
	got = ReverseComplement([]byte("AAC!"))
	if string(got) != "NGTT" {
		t.Fatalf("rc(AAC!) = %s, want NGTT", got)
	}
}

// Property: reverse complement is an involution on concrete sequences.
func TestReverseComplementInvolution(t *testing.T) {
	g := NewGenerator(Human, 77)
	f := func(n uint8) bool {
		seq := g.Generate(int(n))
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: rc pattern of rc pattern is the original.
func TestReverseComplementPatternInvolution(t *testing.T) {
	for _, m := range DefaultMotifs() {
		rc, err := ReverseComplementPattern(m.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReverseComplementPattern(rc)
		if err != nil || back != m.Pattern {
			t.Errorf("rc involution failed for %s: %s -> %s -> %s", m.Name, m.Pattern, rc, back)
		}
	}
}
