package dna

import (
	"fmt"
)

// Generator produces deterministic synthetic DNA with a target GC content
// and optional planted motif occurrences. Two generators constructed with
// the same parameters emit identical sequences, and generation is
// position-addressable: GenerateAt can produce any window of the virtual
// sequence without generating its prefix, which lets the parallel matching
// engine stream multi-gigabyte virtual inputs piecewise.
type Generator struct {
	genome Genome
	seed   uint64
	// plant, when non-empty, is inserted at deterministic pseudo-random
	// intervals with mean plantEvery bases.
	plant      []byte
	plantEvery int
}

// NewGenerator returns a generator for the genome's composition, keyed by
// seed.
func NewGenerator(genome Genome, seed uint64) *Generator {
	return &Generator{genome: genome, seed: seed}
}

// WithPlantedMotif makes the generator overwrite the sequence with the
// given motif at deterministic positions roughly every interval bases.
// Planting guarantees a known lower bound of matches for tests. It returns
// the generator for chaining and an error for invalid arguments.
func (g *Generator) WithPlantedMotif(pattern string, interval int) (*Generator, error) {
	if pattern == "" {
		return nil, fmt.Errorf("dna: planted motif must be non-empty")
	}
	if interval < len(pattern)*2 {
		return nil, fmt.Errorf("dna: plant interval %d too small for motif of length %d", interval, len(pattern))
	}
	for i := 0; i < len(pattern); i++ {
		if _, ok := EncodeByte(pattern[i]); !ok {
			return nil, fmt.Errorf("dna: planted motif must be concrete ACGT, got %q", string(pattern[i]))
		}
	}
	g.plant = []byte(pattern)
	g.plantEvery = interval
	return g, nil
}

// mix is the SplitMix64 finalizer, used as a counter-based RNG so any
// position's base can be derived independently.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// baseAt returns the raw (pre-planting) base at absolute position pos.
func (g *Generator) baseAt(pos int64) byte {
	r := mix(g.seed ^ uint64(pos)*0xD1B54A32D192ED03)
	// Split the 64-bit draw: low bits choose GC vs AT per the genome's GC
	// fraction, the next bit picks within the pair.
	u := float64(r>>11) / (1 << 53)
	gcPick := r&1 == 0
	if u < g.genome.GC {
		if gcPick {
			return 'G'
		}
		return 'C'
	}
	if gcPick {
		return 'A'
	}
	return 'T'
}

// plantStart returns the start position of the planted-motif occurrence in
// plant window w (windows tile the sequence every plantEvery bases), or -1
// if planting is disabled.
func (g *Generator) plantStart(w int64) int64 {
	if len(g.plant) == 0 {
		return -1
	}
	span := int64(g.plantEvery - len(g.plant))
	off := int64(mix(g.seed^0xA5A5A5A5A5A5A5A5^uint64(w)) % uint64(span))
	return w*int64(g.plantEvery) + off
}

// GenerateAt fills dst with the bases of the virtual sequence starting at
// absolute position pos. It is deterministic and window-independent.
func (g *Generator) GenerateAt(pos int64, dst []byte) {
	for i := range dst {
		dst[i] = g.baseAt(pos + int64(i))
	}
	if len(g.plant) == 0 {
		return
	}
	// Overlay planted occurrences from every window intersecting
	// [pos, pos+len).
	every := int64(g.plantEvery)
	first := (pos - int64(len(g.plant))) / every
	if first < 0 {
		first = 0
	}
	last := (pos + int64(len(dst))) / every
	for w := first; w <= last; w++ {
		start := g.plantStart(w)
		for j, b := range g.plant {
			p := start + int64(j)
			if p >= pos && p < pos+int64(len(dst)) {
				dst[p-pos] = b
			}
		}
	}
}

// FillAt is an alias for GenerateAt satisfying streaming-source interfaces
// (notably parem.Source). Generators are immutable after construction, so
// concurrent FillAt calls are safe.
func (g *Generator) FillAt(pos int64, dst []byte) {
	g.GenerateAt(pos, dst)
}

// Generate returns n freshly generated bases starting at position 0.
func (g *Generator) Generate(n int) []byte {
	out := make([]byte, n)
	g.GenerateAt(0, out)
	return out
}

// PlantedCount returns the number of complete planted occurrences whose
// start positions fall in [0, n). It is the guaranteed lower bound of
// matches in Generate(n)'s output (random occurrences can add more).
func (g *Generator) PlantedCount(n int) int {
	if len(g.plant) == 0 {
		return 0
	}
	count := 0
	for w := int64(0); ; w++ {
		start := g.plantStart(w)
		if start+int64(len(g.plant)) > int64(n) {
			break
		}
		count++
	}
	return count
}
