package dna

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeByte(t *testing.T) {
	cases := map[byte]struct {
		code uint8
		ok   bool
	}{
		'A': {BaseA, true}, 'a': {BaseA, true},
		'C': {BaseC, true}, 'c': {BaseC, true},
		'G': {BaseG, true}, 'g': {BaseG, true},
		'T': {BaseT, true}, 't': {BaseT, true},
		'N': {0, false}, 'X': {0, false}, '\n': {0, false}, '>': {0, false},
	}
	for b, want := range cases {
		code, ok := EncodeByte(b)
		if code != want.code || ok != want.ok {
			t.Errorf("EncodeByte(%q) = %d,%v want %d,%v", string(b), code, ok, want.code, want.ok)
		}
	}
}

func TestLettersRoundTrip(t *testing.T) {
	for code, letter := range Letters {
		got, ok := EncodeByte(letter)
		if !ok || got != uint8(code) {
			t.Errorf("Letters[%d]=%q does not round-trip", code, string(letter))
		}
	}
}

func TestExpandIUPAC(t *testing.T) {
	set, err := ExpandIUPAC('R')
	if err != nil || len(set) != 2 {
		t.Fatalf("R = %v, %v", set, err)
	}
	set, err = ExpandIUPAC('n') // lowercase accepted
	if err != nil || len(set) != 4 {
		t.Fatalf("n = %v, %v", set, err)
	}
	if _, err := ExpandIUPAC('Z'); err == nil {
		t.Fatal("Z should not be IUPAC")
	}
	if _, err := ExpandIUPAC('@'); err == nil {
		t.Fatal("@ should not be IUPAC")
	}
}

func TestGenomesMatchPaper(t *testing.T) {
	gs := Genomes()
	if len(gs) != 4 {
		t.Fatalf("want 4 genomes, got %d", len(gs))
	}
	// Order and sizes from Section IV-A: human 3.17, mouse 2.77, cat 2.43,
	// dog 2.38 GB.
	wantGB := []float64{3.17, 2.77, 2.43, 2.38}
	for i, g := range gs {
		if got := g.SizeMB / 1024; got != wantGB[i] {
			t.Errorf("%s size = %.2f GB, want %.2f", g.Name, got, wantGB[i])
		}
	}
	// Human is the reference complexity.
	if Human.Complexity != 1.0 {
		t.Errorf("human complexity = %g, want 1.0", Human.Complexity)
	}
}

func TestGenomeByName(t *testing.T) {
	g, err := GenomeByName("Mouse")
	if err != nil || g.Name != "mouse" {
		t.Fatalf("GenomeByName(Mouse) = %v, %v", g, err)
	}
	if _, err := GenomeByName("horse"); err == nil {
		t.Fatal("unknown genome should fail")
	}
}

func TestGenomeString(t *testing.T) {
	if s := Human.String(); !strings.Contains(s, "human") || !strings.Contains(s, "MB") {
		t.Fatalf("String = %q", s)
	}
}

func TestMotifValidate(t *testing.T) {
	for _, m := range DefaultMotifs() {
		if err := m.Validate(); err != nil {
			t.Errorf("default motif %s invalid: %v", m.Name, err)
		}
	}
	if err := (Motif{Name: "bad", Pattern: ""}).Validate(); err == nil {
		t.Error("empty pattern should fail")
	}
	if err := (Motif{Name: "bad", Pattern: "AXT"}).Validate(); err == nil {
		t.Error("non-IUPAC should fail")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Human, 1)
	g2 := NewGenerator(Human, 1)
	if !bytes.Equal(g1.Generate(4096), g2.Generate(4096)) {
		t.Fatal("same seed must generate identical sequences")
	}
	g3 := NewGenerator(Human, 2)
	if bytes.Equal(g1.Generate(4096), g3.Generate(4096)) {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratorWindowIndependence(t *testing.T) {
	// GenerateAt(pos) must agree with the corresponding window of
	// Generate.
	g := NewGenerator(Cat, 77)
	whole := g.Generate(10000)
	for _, window := range []struct{ pos, n int }{{0, 100}, {500, 1000}, {9000, 1000}, {9999, 1}} {
		part := make([]byte, window.n)
		g.GenerateAt(int64(window.pos), part)
		if !bytes.Equal(part, whole[window.pos:window.pos+window.n]) {
			t.Fatalf("window at %d diverges from whole sequence", window.pos)
		}
	}
}

func TestGeneratorComposition(t *testing.T) {
	// GC fraction should approximate the genome's GC parameter.
	g := NewGenerator(Human, 5)
	seq := g.Generate(1 << 18)
	gc := 0
	for _, b := range seq {
		if b == 'G' || b == 'C' {
			gc++
		}
	}
	frac := float64(gc) / float64(len(seq))
	if frac < Human.GC-0.02 || frac > Human.GC+0.02 {
		t.Fatalf("GC fraction = %.3f, want ~%.2f", frac, Human.GC)
	}
	// Only ACGT bytes.
	for _, b := range seq {
		if _, ok := EncodeByte(b); !ok {
			t.Fatalf("generator emitted non-ACGT byte %q", string(b))
		}
	}
}

func TestPlantedMotifGuarantees(t *testing.T) {
	g, err := NewGenerator(Dog, 9).WithPlantedMotif("GGATCC", 256)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 14
	seq := g.Generate(n)
	planted := g.PlantedCount(n)
	if planted < n/256-2 {
		t.Fatalf("planted count %d suspiciously low for %d bases", planted, n)
	}
	// Count literal occurrences; must be at least the planted count.
	occ := bytes.Count(seq, []byte("GGATCC"))
	if occ < planted {
		t.Fatalf("found %d occurrences, planted %d", occ, planted)
	}
}

func TestPlantedMotifWindowIndependence(t *testing.T) {
	g, err := NewGenerator(Mouse, 13).WithPlantedMotif("TATAAA", 300)
	if err != nil {
		t.Fatal(err)
	}
	whole := g.Generate(8192)
	part := make([]byte, 3000)
	g.GenerateAt(2500, part)
	if !bytes.Equal(part, whole[2500:5500]) {
		t.Fatal("planting must be window-independent")
	}
}

func TestWithPlantedMotifValidation(t *testing.T) {
	if _, err := NewGenerator(Human, 1).WithPlantedMotif("", 100); err == nil {
		t.Error("empty motif should fail")
	}
	if _, err := NewGenerator(Human, 1).WithPlantedMotif("ACGT", 4); err == nil {
		t.Error("interval too small should fail")
	}
	if _, err := NewGenerator(Human, 1).WithPlantedMotif("ACNT", 100); err == nil {
		t.Error("IUPAC in planted motif should fail")
	}
}

// Property: window independence holds for arbitrary positions/lengths.
func TestGenerateAtProperty(t *testing.T) {
	g := NewGenerator(Human, 99)
	whole := g.Generate(4096)
	f := func(pos, n uint16) bool {
		p := int(pos) % 4096
		l := int(n) % (4096 - p)
		part := make([]byte, l)
		g.GenerateAt(int64(p), part)
		return bytes.Equal(part, whole[p:p+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
