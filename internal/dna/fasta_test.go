package dna

import (
	"bytes"
	"strings"
	"testing"
)

func TestFASTARoundTrip(t *testing.T) {
	seq := NewGenerator(Human, 3).Generate(500)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, "synthetic human chr1", seq); err != nil {
		t.Fatal(err)
	}
	records, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d, want 1", len(records))
	}
	if records[0].Header != "synthetic human chr1" {
		t.Fatalf("header = %q", records[0].Header)
	}
	if !bytes.Equal(records[0].Seq, seq) {
		t.Fatal("sequence does not round-trip")
	}
}

func TestFASTALineWidth(t *testing.T) {
	seq := NewGenerator(Human, 3).Generate(200)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, "x", seq); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, l := range lines[1 : len(lines)-1] { // all full lines
		if len(l) != 70 {
			t.Fatalf("line %d has width %d, want 70", i+1, len(l))
		}
	}
}

func TestFASTAEmptySequence(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	records, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || len(records[0].Seq) != 0 {
		t.Fatalf("unexpected records %+v", records)
	}
}

func TestFASTAMultipleRecords(t *testing.T) {
	input := ">a\nACGT\nACGT\n>b\nTTTT\n"
	records, err := ReadFASTA(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	if string(records[0].Seq) != "ACGTACGT" || string(records[1].Seq) != "TTTT" {
		t.Fatalf("sequences = %q, %q", records[0].Seq, records[1].Seq)
	}
}

func TestFASTAAcceptsIUPAC(t *testing.T) {
	records, err := ReadFASTA(strings.NewReader(">x\nACGTN\nRYKM\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(records[0].Seq) != "ACGTNRYKM" {
		t.Fatalf("seq = %q", records[0].Seq)
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header should fail")
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nAC!T\n")); err == nil {
		t.Error("invalid byte should fail")
	}
}
