// dnasearch runs the paper's workload for real: it streams a synthetic
// DNA sequence through the Aho-Corasick matching engine, split between
// the host executor and the (simulated) accelerator according to a tuned
// system configuration, and verifies that the heterogeneous execution
// finds exactly the same motif occurrences as a sequential scan —
// including matches that straddle the host/device boundary.
package main

import (
	"fmt"
	"log"

	"hetopt"
)

func main() {
	// A 32 MiB synthetic cat genome with extra EcoRI sites planted so
	// there is something to find.
	gen := hetopt.NewGenerator(hetopt.Cat, 2024)
	if _, err := gen.WithPlantedMotif("GAATTC", 8192); err != nil {
		log.Fatal(err)
	}
	const totalBytes = 32 << 20

	// Compile the motif set (promoter elements + restriction sites).
	motifs := hetopt.DefaultMotifs()
	dfa, err := hetopt.CompileMotifs(motifs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d motifs into a %d-state automaton (context %d)\n",
		len(motifs), dfa.NumStates(), dfa.ContextLen)

	// Tune the distribution for the full cat genome (2.43 GB) with SAM —
	// no model training needed. A large input favours a host/device
	// split (paper Figure 2b).
	tuner := hetopt.NewTuner()
	fullGenome := hetopt.GenomeWorkload(hetopt.Cat)
	res, err := tuner.Tune(fullGenome, hetopt.SAM, hetopt.Options{Iterations: 500, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuned configuration (for the full genome):", res.Config)

	// Execute the 32 MiB sample for real with the tuned split: host share
	// on host workers, device share on the device-simulating executor.
	workload := fullGenome.Scaled(float64(totalBytes) / (1 << 20))
	report, err := tuner.Platform.Execute(workload, res.Config, dfa, gen, totalBytes, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host share:   %d bytes, %d matches (%v, %d chunks)\n",
		report.HostBytes, report.HostMatches, report.HostRun.Strategy, report.HostRun.Chunks)
	fmt.Printf("device share: %d bytes, %d matches (%v, %d chunks)\n",
		report.DeviceBytes, report.DeviceMatches, report.DeviceRun.Strategy, report.DeviceRun.Chunks)
	fmt.Printf("total matches: %d (>= %d planted)\n", report.Matches, gen.PlantedCount(totalBytes))
	fmt.Printf("modeled times: host %.4f s, device %.4f s, E = %.4f s\n",
		report.Times.Host, report.Times.Device, report.Times.E())

	// Verify against a sequential scan of the whole input.
	sequential := dfa.CountMatches(gen.Generate(totalBytes))
	if sequential != report.Matches {
		log.Fatalf("MISMATCH: sequential %d != heterogeneous %d", sequential, report.Matches)
	}
	fmt.Println("verified: heterogeneous execution matches a sequential scan exactly")
}
