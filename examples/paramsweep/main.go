// paramsweep reproduces the paper's motivational experiment (Figure 2)
// interactively: it sweeps the work-distribution ratio for several input
// sizes and host thread counts and prints where the optimum lands,
// illustrating why no single static distribution is right.
package main

import (
	"fmt"
	"log"

	"hetopt"
)

func main() {
	platform := hetopt.NewPlatform()

	scenarios := []struct {
		label       string
		sizeMB      float64
		hostThreads int
	}{
		{"small input, many host threads", 190, 48},
		{"large input, many host threads", 3250, 48},
		{"large input, few host threads", 3250, 4},
	}

	for _, sc := range scenarios {
		fmt.Printf("%s (%.0f MB, %d host threads)\n", sc.label, sc.sizeMB, sc.hostThreads)
		fmt.Println("  ratio      E [s]")
		workload := hetopt.Workload{Name: "human", SizeMB: sc.sizeMB, Complexity: 1}
		bestLabel, bestE := "", -1.0
		for f := 100; f >= 0; f -= 10 {
			cfg := hetopt.Config{
				HostThreads:    sc.hostThreads,
				HostAffinity:   hetopt.AffinityScatter,
				DeviceThreads:  240,
				DeviceAffinity: hetopt.AffinityBalanced,
				HostFraction:   float64(f),
			}
			times, err := platform.Measure(workload, cfg, 0)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("%d/%d", f, 100-f)
			switch f {
			case 100:
				label = "CPU only"
			case 0:
				label = "Phi only"
			}
			e := times.E()
			marker := ""
			if bestE < 0 || e < bestE {
				bestE, bestLabel = e, label
			}
			fmt.Printf("  %-9s  %.4f%s\n", label, e, marker)
		}
		fmt.Printf("  -> optimum at %s (%.4f s)\n\n", bestLabel, bestE)
	}

	fmt.Println("The optimum moves with input size and available host threads —")
	fmt.Println("exactly the behaviour that motivates automatic tuning (paper Section II-C).")
}
