// Quickstart: train the performance models, then let SAML (simulated
// annealing + machine learning) pick a near-optimal system configuration
// for analyzing the human genome, and compare it against host-only and
// device-only execution — the headline experiment of the paper.
package main

import (
	"fmt"
	"log"

	"hetopt"
)

func main() {
	tuner := hetopt.NewTuner()

	// Train the boosted-decision-tree performance predictors on the
	// 7,200-experiment grid (a couple of seconds on the simulator).
	if err := tuner.Train(); err != nil {
		log.Fatal(err)
	}

	// Tune with the paper's highlighted budget: 1000 SA iterations,
	// about 5% of the 19,926-configuration space.
	res, err := tuner.TuneGenome(hetopt.Human, hetopt.SAML, hetopt.Options{
		Iterations: 1000,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	hostOnly, deviceOnly, err := tuner.Baselines(hetopt.GenomeWorkload(hetopt.Human))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("suggested configuration:", res.Config)
	fmt.Printf("execution time: %.3f s (host %.3f s, device %.3f s)\n",
		res.MeasuredE(), res.Measured.Host, res.Measured.Device)
	fmt.Printf("speedup vs host-only:   %.2fx\n", hostOnly.MeasuredE()/res.MeasuredE())
	fmt.Printf("speedup vs device-only: %.2fx\n", deviceOnly.MeasuredE()/res.MeasuredE())
	fmt.Printf("search effort: %d predicted evaluations, %d real experiment(s)\n",
		res.SearchEvaluations, res.Experiments)
}
