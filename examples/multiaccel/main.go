// multiaccel demonstrates the multi-accelerator extension: the paper
// evaluates one Xeon Phi, but its motivation (Section II-A) covers nodes
// with several cards. This example tunes the human-genome workload on
// platforms with one, two and three Phis and shows how the optimal
// distribution and execution time scale.
package main

import (
	"fmt"
	"log"

	"hetopt"
)

func main() {
	workload := hetopt.GenomeWorkload(hetopt.Human)

	fmt.Println("tuning work distribution across host + N accelerators")
	fmt.Printf("workload: %s (%.0f MB)\n\n", workload.Name, workload.SizeMB)

	var oneCard float64
	for n := 1; n <= 3; n++ {
		problem, err := hetopt.MultiPhiProblem(n, workload)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hetopt.TuneMulti(problem, 3000, 42)
		if err != nil {
			log.Fatal(err)
		}
		e := res.Times.E()
		if n == 1 {
			oneCard = e
		}
		fmt.Printf("%d Phi card(s): E = %.4f s (%.2fx vs 1 card)\n", n, e, oneCard/e)
		fmt.Printf("  distribution: %s\n", problem.Platform.FormatConfig(res.Config))
		fmt.Printf("  energy: %.1f J\n", res.Energy.Total())
		fmt.Printf("  per-unit times: host %.4f s", res.Times.Host)
		for i, d := range res.Times.Devices {
			fmt.Printf(", %s %.4f s", problem.Platform.DeviceName(i), d)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("Additional cards shift work off the host and shrink E with")
	fmt.Println("diminishing returns — offload latency and the host's share floor the time.")
}
