// custommachine shows that the tuner is not tied to the paper's Xeon +
// Xeon Phi testbed: it describes a different accelerator (a GPU-like
// device with many simple cores behind a fast interconnect), builds a
// matching configuration space, trains fresh performance models for the
// new machine, and tunes the distribution.
package main

import (
	"fmt"
	"log"

	"hetopt"
)

func main() {
	// Describe the custom accelerator: 128 simple cores, 2-way SMT,
	// wide memory bus, scatter/compact placement only.
	gpu := &hetopt.Processor{
		Name:            "GPU-like accelerator",
		Sockets:         1,
		CoresPerSocket:  128,
		ThreadsPerCore:  2,
		BaseClockGHz:    1.1,
		MaxClockGHz:     1.4,
		CacheMB:         8,
		MemBandwidthGBs: 600,
		MemoryGB:        24,
		VectorBits:      1024,
		Affinities:      []hetopt.Affinity{hetopt.AffinityScatter, hetopt.AffinityCompact},
	}

	// Calibrate: slower single cores than the Phi, better SMT overlap,
	// faster interconnect, higher launch latency.
	cal := hetopt.DefaultCalibration()
	cal.DeviceCoreRateMBs = 30
	cal.DeviceSMTGain = []float64{1.0, 1.9}
	cal.OffloadLatencySec = 0.18
	cal.PCIeRateMBs = 12000

	model := &hetopt.PerfModel{
		Host:   hetopt.XeonE5Host(),
		Device: gpu,
		Cal:    cal,
	}
	platform := hetopt.NewCustomPlatform(model)

	// A configuration space matching the new device's thread range.
	schema, err := hetopt.NewSchema(hetopt.SchemaSpec{
		HostThreads:      []int{2, 6, 12, 24, 36, 48},
		HostAffinities:   []hetopt.Affinity{hetopt.AffinityNone, hetopt.AffinityScatter, hetopt.AffinityCompact},
		DeviceThreads:    []int{8, 16, 32, 64, 128, 256},
		DeviceAffinities: []hetopt.Affinity{hetopt.AffinityScatter, hetopt.AffinityCompact},
		Fractions:        fractions(2.5),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fresh tuner for the custom machine: the training grid must use the
	// machine's own thread/affinity values.
	tuner := hetopt.NewTuner()
	tuner.Platform = platform
	tuner.Schema = schema
	tuner.Plan.DeviceThreads = []int{8, 16, 32, 64, 128, 256}
	tuner.Plan.DeviceAffinities = []hetopt.Affinity{hetopt.AffinityScatter, hetopt.AffinityCompact}

	fmt.Printf("training models for %q (%d+%d experiments)...\n",
		gpu.Name, tuner.Plan.HostExperiments(), tuner.Plan.DeviceExperiments())
	if err := tuner.Train(); err != nil {
		log.Fatal(err)
	}

	workload := hetopt.GenomeWorkload(hetopt.Mouse)
	res, err := tuner.Tune(workload, hetopt.SAML, hetopt.Options{Iterations: 1000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	hostOnly, deviceOnly, err := tuner.Baselines(workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("suggested configuration:", res.Config)
	fmt.Printf("E = %.4f s | host-only %.4f s (%.2fx) | device-only %.4f s (%.2fx)\n",
		res.MeasuredE(),
		hostOnly.MeasuredE(), hostOnly.MeasuredE()/res.MeasuredE(),
		deviceOnly.MeasuredE(), deviceOnly.MeasuredE()/res.MeasuredE())
}

// fractions builds the 0..100 grid with the given step.
func fractions(step float64) []float64 {
	var out []float64
	for f := 0.0; f <= 100; f += step {
		out = append(out, f)
	}
	return out
}
